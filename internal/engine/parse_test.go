package engine

import (
	"strings"
	"testing"
)

func TestParseSamplingCubeStatement(t *testing.T) {
	// Query1 from the paper's Figure 3 (attribute names flattened).
	src := `CREATE TABLE SamplingCube AS
		SELECT D, C, M, SAMPLING(*, 0.1) AS sample
		FROM nyctaxi
		GROUPBY CUBE(D, C, M)
		HAVING loss(pickup_point, Sam_global) > 0.1`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := st.(*CreateSamplingCube)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if c.CubeName != "SamplingCube" || c.Source != "nyctaxi" {
		t.Fatalf("names: %+v", c)
	}
	if len(c.CubedAttrs) != 3 || c.CubedAttrs[0] != "D" || c.CubedAttrs[2] != "M" {
		t.Fatalf("attrs: %v", c.CubedAttrs)
	}
	if c.Threshold != 0.1 || c.LossName != "loss" || c.TargetAttr() != "pickup_point" {
		t.Fatalf("loss spec: %+v", c)
	}
	if c.SampleAlias != "sample" {
		t.Fatalf("alias: %q", c.SampleAlias)
	}
}

func TestParseSamplingCubeGroupBYTwoWords(t *testing.T) {
	src := `CREATE TABLE cube1 AS SELECT a, b, SAMPLING(*, 5) AS s
		FROM t GROUP BY CUBE(a, b) HAVING myloss(x, Sam_global) > 5`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*CreateSamplingCube); !ok {
		t.Fatalf("got %T", st)
	}
}

func TestParseSamplingCubeErrors(t *testing.T) {
	cases := map[string]string{
		"mismatched CUBE attrs": `CREATE TABLE c AS SELECT a, b, SAMPLING(*, 1) AS s
			FROM t GROUPBY CUBE(a, x) HAVING l(v, Sam_global) > 1`,
		"threshold mismatch": `CREATE TABLE c AS SELECT a, SAMPLING(*, 1) AS s
			FROM t GROUPBY CUBE(a) HAVING l(v, Sam_global) > 2`,
		"bad sam name": `CREATE TABLE c AS SELECT a, SAMPLING(*, 1) AS s
			FROM t GROUPBY CUBE(a) HAVING l(v, Sam_other) > 1`,
		"sampling not last": `CREATE TABLE c AS SELECT SAMPLING(*, 1) AS s, a
			FROM t GROUPBY CUBE(a) HAVING l(v, Sam_global) > 1`,
		"missing having": `CREATE TABLE c AS SELECT a, SAMPLING(*, 1) AS s
			FROM t GROUPBY CUBE(a)`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: should not parse", name)
		}
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse(`SELECT sample FROM SamplingCube WHERE D = 'short' AND C = 1`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*SelectStmt)
	if s.From != "SamplingCube" || len(s.Items) != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Where == nil || !strings.Contains(s.Where.String(), "AND") {
		t.Fatalf("where: %v", s.Where)
	}
}

func TestParseSelectFull(t *testing.T) {
	st, err := Parse(`SELECT payment, AVG(fare) AS af, COUNT(*) AS n
		FROM rides WHERE fare > 2.5 GROUP BY payment HAVING COUNT(*) > 10 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*SelectStmt)
	if len(s.Items) != 3 || s.Items[1].Alias != "af" {
		t.Fatalf("items: %+v", s.Items)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0] != "payment" || s.GroupCube {
		t.Fatalf("groupby: %v cube=%v", s.GroupBy, s.GroupCube)
	}
	if s.Having == nil || s.Limit != 5 {
		t.Fatalf("having/limit: %v %d", s.Having, s.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	st, err := Parse(`SELECT * FROM rides LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*SelectStmt)
	if !s.Star || s.Limit != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestParseCreateAggregate(t *testing.T) {
	// The paper's Function 1: relative error of the statistical mean.
	src := `CREATE AGGREGATE loss(Raw, Sam) RETURN decimal_value AS
		BEGIN ABS(AVG(Raw) - AVG(Sam)) / AVG(Raw) END`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*CreateAggregate)
	if c.Name != "loss" || c.RawName != "Raw" || c.SamName != "Sam" {
		t.Fatalf("%+v", c)
	}
	if !strings.Contains(c.Body.String(), "AVG(Raw)") {
		t.Fatalf("body: %s", c.Body.String())
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse(`SELECT * FROM t extra`); err == nil {
		t.Fatal("want trailing-input error")
	}
}

func TestParseEmptyAndJunk(t *testing.T) {
	for _, src := range []string{"", "DROP TABLE x", "CREATE INDEX i", "WHERE x"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
