// Package engine implements the SQL-subset data system substrate that
// Tabula runs on: typed scalar expressions, filters, hash GroupBy, the
// GROUP BY CUBE operator, hash equi-joins, an algebraic aggregate
// framework, and a parser for the Tabula SQL dialect (including the
// CREATE AGGREGATE accuracy-loss DSL).
//
// The paper deploys Tabula on Apache Spark SQL; this package is the
// from-scratch stand-in. It preserves the properties the middleware relies
// on: full-scan GroupBy cost proportional to the table size, the CUBE
// operator's 2^n cuboid expansion, and single-pass construction of
// algebraic aggregates.
package engine

import (
	"fmt"
	"sort"

	"github.com/tabula-db/tabula/internal/dataset"
)

// NullCode is the categorical code representing the cube's "*" (ALL /
// rolled-up) coordinate in a cell address.
const NullCode int32 = -1

// CatEncoding densely encodes the values of a set of categorical columns
// so that cube cells can be addressed with small integer coordinates. Both
// String columns (via their dictionary) and Int64 columns (via a value
// registry) are supported; these are the attribute types the paper's seven
// NYCtaxi filter attributes take.
type CatEncoding struct {
	table *dataset.Table
	cols  []int             // table column indexes, in cube-attribute order
	codes [][]int32         // per attribute: dense code per row
	cards []int             // per attribute: number of distinct values
	vals  [][]dataset.Value // per attribute: code -> original value
}

// NewCatEncoding scans the table once per attribute and assigns each
// distinct value a dense code in value order (deterministic across runs).
func NewCatEncoding(t *dataset.Table, cols []int) (*CatEncoding, error) {
	e := &CatEncoding{
		table: t,
		cols:  append([]int(nil), cols...),
		codes: make([][]int32, len(cols)),
		cards: make([]int, len(cols)),
		vals:  make([][]dataset.Value, len(cols)),
	}
	n := t.NumRows()
	for ai, c := range cols {
		f := t.Schema()[c]
		switch f.Type {
		case dataset.String:
			rowCodes, dict := t.StringCodes(c)
			// Dictionary codes are dense already but ordered by first
			// appearance; remap to sorted order for determinism.
			order := make([]int32, len(dict))
			sorted := make([]string, len(dict))
			copy(sorted, dict)
			sort.Strings(sorted)
			rank := make(map[string]int32, len(dict))
			for i, s := range sorted {
				rank[s] = int32(i)
			}
			for i, s := range dict {
				order[i] = rank[s]
			}
			codes := make([]int32, n)
			for i, rc := range rowCodes {
				codes[i] = order[rc]
			}
			e.codes[ai] = codes
			e.cards[ai] = len(dict)
			vals := make([]dataset.Value, len(dict))
			for _, s := range sorted {
				vals[rank[s]] = dataset.StringValue(s)
			}
			e.vals[ai] = vals
		case dataset.Int64:
			ints := t.Ints(c)
			distinct := make(map[int64]struct{})
			for _, v := range ints {
				distinct[v] = struct{}{}
			}
			sorted := make([]int64, 0, len(distinct))
			for v := range distinct {
				sorted = append(sorted, v)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			rank := make(map[int64]int32, len(sorted))
			vals := make([]dataset.Value, len(sorted))
			for i, v := range sorted {
				rank[v] = int32(i)
				vals[i] = dataset.IntValue(v)
			}
			codes := make([]int32, n)
			for i, v := range ints {
				codes[i] = rank[v]
			}
			e.codes[ai] = codes
			e.cards[ai] = len(sorted)
			e.vals[ai] = vals
		default:
			return nil, fmt.Errorf("engine: cube attribute %q has type %v; only VARCHAR and BIGINT can be cubed", f.Name, f.Type)
		}
	}
	return e, nil
}

// NumAttrs returns the number of encoded attributes.
func (e *CatEncoding) NumAttrs() int { return len(e.cols) }

// Cardinality returns the distinct-value count of attribute ai.
func (e *CatEncoding) Cardinality(ai int) int { return e.cards[ai] }

// Cardinalities returns a copy of all attribute cardinalities.
func (e *CatEncoding) Cardinalities() []int { return append([]int(nil), e.cards...) }

// RowCodes returns the per-row dense codes of attribute ai. Callers must
// not mutate the slice.
func (e *CatEncoding) RowCodes(ai int) []int32 { return e.codes[ai] }

// Value maps a code of attribute ai back to the original value.
func (e *CatEncoding) Value(ai int, code int32) dataset.Value { return e.vals[ai][code] }

// CodeOf maps a value of attribute ai to its dense code, or NullCode if
// the value does not occur in the table.
func (e *CatEncoding) CodeOf(ai int, v dataset.Value) int32 {
	// Linear scan is fine here: CodeOf only runs on the maintenance path
	// (AppendRows caches it per distinct value). The serving path keys
	// per-snapshot value dictionaries with CanonValue instead.
	for c, val := range e.vals[ai] {
		if val.Equal(v) {
			return int32(c)
		}
	}
	return NullCode
}

// CanonValue returns v rebuilt through its type's constructor so every
// inactive payload field is zero. Value.Equal compares only the active
// field, but Go map keys compare every field of the struct — a caller-
// built Value carrying junk in an inactive field would Equal a stored
// value yet miss it in a map. Canonicalizing both the stored keys and
// the probe makes map-key equality coincide with Equal, which is what
// lets snapshot value dictionaries replace linear Equal scans.
func CanonValue(v dataset.Value) dataset.Value {
	switch v.Type {
	case dataset.Int64:
		return dataset.IntValue(v.I)
	case dataset.Float64:
		return dataset.FloatValue(v.F)
	case dataset.String:
		return dataset.StringValue(v.S)
	case dataset.Point:
		return dataset.PointValue(v.P)
	default:
		return dataset.Value{Type: v.Type}
	}
}

// Columns returns the table column indexes in attribute order.
func (e *CatEncoding) Columns() []int { return append([]int(nil), e.cols...) }

// AppendRows extends the per-row code arrays for table rows appended
// after the encoding was built (rows from index `from` onward). It fails
// if an appended row carries a categorical value outside the attribute's
// existing domain — new domain values change the cube's address space
// and require a full rebuild.
func (e *CatEncoding) AppendRows(from int) error {
	n := e.table.NumRows()
	for ai := range e.cols {
		if len(e.codes[ai]) != from {
			return fmt.Errorf("engine: AppendRows(%d) but attribute %d has %d encoded rows", from, ai, len(e.codes[ai]))
		}
	}
	// Validate and stage all attributes before committing any, so a new
	// domain value leaves the encoding untouched.
	staged := make([][]int32, len(e.cols))
	for ai, c := range e.cols {
		f := e.table.Schema()[c]
		buf := make([]int32, 0, n-from)
		switch f.Type {
		case dataset.String:
			rowCodes, dict := e.table.StringCodes(c)
			// Map dictionary codes (which may have grown) to encoding
			// codes via value lookup; cache per dict entry.
			dictToEnc := make([]int32, len(dict))
			for i := range dictToEnc {
				dictToEnc[i] = -2 // unresolved
			}
			for row := from; row < n; row++ {
				dc := rowCodes[row]
				if dictToEnc[dc] == -2 {
					dictToEnc[dc] = e.CodeOf(ai, dataset.StringValue(dict[dc]))
				}
				code := dictToEnc[dc]
				if code == NullCode {
					return fmt.Errorf("engine: appended row %d has new value %q for attribute %q; rebuild the cube", row, dict[dc], f.Name)
				}
				buf = append(buf, code)
			}
		case dataset.Int64:
			ints := e.table.Ints(c)
			cache := make(map[int64]int32)
			for row := from; row < n; row++ {
				v := ints[row]
				code, ok := cache[v]
				if !ok {
					code = e.CodeOf(ai, dataset.IntValue(v))
					cache[v] = code
				}
				if code == NullCode {
					return fmt.Errorf("engine: appended row %d has new value %d for attribute %q; rebuild the cube", row, v, f.Name)
				}
				buf = append(buf, code)
			}
		}
		staged[ai] = buf
	}
	for ai := range e.cols {
		e.codes[ai] = append(e.codes[ai], staged[ai]...)
	}
	return nil
}

// Table returns the encoded table.
func (e *CatEncoding) Table() *dataset.Table { return e.table }

// Footprint returns the encoder's in-memory size in bytes.
func (e *CatEncoding) Footprint() int64 {
	var b int64
	for _, c := range e.codes {
		b += int64(cap(c)) * 4
	}
	b += int64(len(e.vals)) * 64
	return b
}

// KeyCodec packs a cell address — one code per attribute, NullCode for the
// rolled-up "*" coordinate — into a single uint64 using mixed-radix
// encoding with radix card+1 per attribute (the +1 slot encodes null).
type KeyCodec struct {
	radices []uint64
	weights []uint64
}

// NewKeyCodec builds a codec for attributes with the given cardinalities.
// It fails if the address space exceeds 64 bits, which would require far
// more cube cells than any dashboard workload materializes.
func NewKeyCodec(cards []int) (*KeyCodec, error) {
	k := &KeyCodec{
		radices: make([]uint64, len(cards)),
		weights: make([]uint64, len(cards)),
	}
	w := uint64(1)
	for i, c := range cards {
		k.radices[i] = uint64(c) + 1
		k.weights[i] = w
		next := w * k.radices[i]
		if c < 0 || (w != 0 && next/w != k.radices[i]) {
			return nil, fmt.Errorf("engine: cube address space overflows uint64 at attribute %d", i)
		}
		w = next
	}
	return k, nil
}

// Encode packs the cell address. Codes must be in [0, card) or NullCode.
func (k *KeyCodec) Encode(codes []int32) uint64 {
	var key uint64
	for i, c := range codes {
		d := uint64(0) // null
		if c != NullCode {
			d = uint64(c) + 1
		}
		key += d * k.weights[i]
	}
	return key
}

// Decode unpacks a key into the provided slice (allocating if nil).
func (k *KeyCodec) Decode(key uint64, out []int32) []int32 {
	if out == nil {
		out = make([]int32, len(k.radices))
	}
	for i := range k.radices {
		d := (key / k.weights[i]) % k.radices[i]
		if d == 0 {
			out[i] = NullCode
		} else {
			out[i] = int32(d - 1)
		}
	}
	return out
}

// NumAttrs returns the number of attributes the codec addresses.
func (k *KeyCodec) NumAttrs() int { return len(k.radices) }

// Digit returns the raw mixed-radix digit of attribute ai in key (0 means
// the null coordinate; code+1 otherwise).
func (k *KeyCodec) Digit(key uint64, ai int) uint64 {
	return (key / k.weights[ai]) % k.radices[ai]
}

// Weight returns the mixed-radix weight of attribute ai.
func (k *KeyCodec) Weight(ai int) uint64 { return k.weights[ai] }
