package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/tabula-db/tabula/internal/dataset"
)

// AggState is a mergeable partial aggregate. States of distributive and
// algebraic measures (the only kinds the paper's dry-run stage can exploit)
// can be merged bottom-up through the cuboid lattice: the state of a coarse
// cell is the merge of the states of its finest descendant cells, so the
// raw table is scanned exactly once.
type AggState interface {
	// Add folds one input value into the state.
	Add(v dataset.Value)
	// Merge folds another state of the same kind into the receiver.
	Merge(o AggState)
	// Value finalizes the aggregate.
	Value() dataset.Value
	// Clone returns a deep copy, used when a cuboid derivation must not
	// alias its parents' states.
	Clone() AggState
}

// AggFunc constructs states for one aggregate measure.
type AggFunc interface {
	Name() string
	NewState() AggState
}

// NewAggFunc returns the builtin aggregate with the given (case
// insensitive) name: COUNT, SUM, AVG, MIN, MAX, STDDEV, VAR, or
// DISTINCT (the distinct-value count, in the paper's aggregate list).
func NewAggFunc(name string) (AggFunc, error) {
	up := strings.ToUpper(name)
	switch up {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VAR", "DISTINCT":
		return builtinAgg{name: up}, nil
	default:
		return nil, fmt.Errorf("engine: unknown aggregate %q", name)
	}
}

type builtinAgg struct{ name string }

func (b builtinAgg) Name() string { return b.name }

func (b builtinAgg) NewState() AggState {
	switch b.name {
	case "COUNT":
		return &countState{}
	case "SUM":
		return &sumState{}
	case "AVG":
		return &avgState{}
	case "MIN":
		return &minMaxState{min: true, cur: math.Inf(1)}
	case "MAX":
		return &minMaxState{min: false, cur: math.Inf(-1)}
	case "STDDEV":
		return &momentState{std: true}
	case "VAR":
		return &momentState{}
	case "DISTINCT":
		return NewDistinctState()
	}
	panic("engine: bad builtin aggregate " + b.name)
}

type countState struct{ n int64 }

func (s *countState) Add(dataset.Value)    { s.n++ }
func (s *countState) Merge(o AggState)     { s.n += o.(*countState).n }
func (s *countState) Value() dataset.Value { return dataset.IntValue(s.n) }
func (s *countState) Clone() AggState      { c := *s; return &c }

type sumState struct{ sum float64 }

func (s *sumState) Add(v dataset.Value)  { s.sum += v.Float() }
func (s *sumState) Merge(o AggState)     { s.sum += o.(*sumState).sum }
func (s *sumState) Value() dataset.Value { return dataset.FloatValue(s.sum) }
func (s *sumState) Clone() AggState      { c := *s; return &c }

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Add(v dataset.Value) { s.sum += v.Float(); s.n++ }
func (s *avgState) Merge(o AggState)    { a := o.(*avgState); s.sum += a.sum; s.n += a.n }
func (s *avgState) Value() dataset.Value {
	if s.n == 0 {
		return dataset.FloatValue(math.NaN())
	}
	return dataset.FloatValue(s.sum / float64(s.n))
}
func (s *avgState) Clone() AggState { c := *s; return &c }

type minMaxState struct {
	min bool
	cur float64
}

func (s *minMaxState) Add(v dataset.Value) {
	f := v.Float()
	if s.min == (f < s.cur) {
		s.cur = f
	}
}
func (s *minMaxState) Merge(o AggState) {
	m := o.(*minMaxState)
	if s.min == (m.cur < s.cur) && m.cur != s.cur {
		s.cur = m.cur
	}
}
func (s *minMaxState) Value() dataset.Value { return dataset.FloatValue(s.cur) }
func (s *minMaxState) Clone() AggState      { c := *s; return &c }

// momentState tracks count, sum and sum of squares — enough for the
// algebraic VARiance and STDDEV (population form).
type momentState struct {
	std   bool
	n     int64
	sum   float64
	sumSq float64
}

func (s *momentState) Add(v dataset.Value) {
	f := v.Float()
	s.n++
	s.sum += f
	s.sumSq += f * f
}
func (s *momentState) Merge(o AggState) {
	m := o.(*momentState)
	s.n += m.n
	s.sum += m.sum
	s.sumSq += m.sumSq
}
func (s *momentState) Value() dataset.Value {
	if s.n == 0 {
		return dataset.FloatValue(math.NaN())
	}
	mean := s.sum / float64(s.n)
	variance := s.sumSq/float64(s.n) - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise
	}
	if s.std {
		return dataset.FloatValue(math.Sqrt(variance))
	}
	return dataset.FloatValue(variance)
}
func (s *momentState) Clone() AggState { c := *s; return &c }

// RegressionState accumulates the sufficient statistics (n, Σx, Σy, Σxy,
// Σx²) for a least-squares line — the paper's Function 3 uses the slope
// converted to an angle in degrees. The state is algebraic, so the dry run
// can merge it through the lattice.
type RegressionState struct {
	N            int64
	SumX, SumY   float64
	SumXY, SumXX float64
}

// AddXY folds one (x, y) observation.
func (s *RegressionState) AddXY(x, y float64) {
	s.N++
	s.SumX += x
	s.SumY += y
	s.SumXY += x * y
	s.SumXX += x * x
}

// MergeReg folds another regression state.
func (s *RegressionState) MergeReg(o *RegressionState) {
	s.N += o.N
	s.SumX += o.SumX
	s.SumY += o.SumY
	s.SumXY += o.SumXY
	s.SumXX += o.SumXX
}

// Slope returns the least-squares slope, per the paper's formula
// slope = (nΣxy − Σx·Σy) / (nΣx² − (Σx)²). It returns NaN for degenerate
// inputs (fewer than 2 points or zero x-variance).
func (s *RegressionState) Slope() float64 {
	n := float64(s.N)
	den := n*s.SumXX - s.SumX*s.SumX
	if s.N < 2 || den == 0 {
		return math.NaN()
	}
	return (n*s.SumXY - s.SumX*s.SumY) / den
}

// Intercept returns the least-squares intercept, or NaN when degenerate.
func (s *RegressionState) Intercept() float64 {
	sl := s.Slope()
	if math.IsNaN(sl) {
		return math.NaN()
	}
	n := float64(s.N)
	return (s.SumY - sl*s.SumX) / n
}

// Angle returns the slope converted to degrees in (−90°, 90°].
func (s *RegressionState) Angle() float64 {
	return math.Atan(s.Slope()) * 180 / math.Pi
}

// DistinctState counts distinct values of any scalar type (keys are the
// values' canonical display forms), distributive by set union; Value
// returns the distinct count.
type DistinctState struct {
	set map[string]struct{}
}

// NewDistinctState returns an empty distinct accumulator.
func NewDistinctState() *DistinctState { return &DistinctState{set: make(map[string]struct{})} }

// Add implements AggState.
func (s *DistinctState) Add(v dataset.Value) { s.set[distinctKey(v)] = struct{}{} }

// distinctKey renders v's canonical display form without going through
// Value.String's fmt.Sprintf for the common scalar types — the per-Add
// formatting alloc dominates DISTINCT folds otherwise. The output must
// stay byte-identical to v.String() (Keys() exposes it, and states built
// before and after this fast path must merge).
func distinctKey(v dataset.Value) string {
	switch v.Type {
	case dataset.String:
		return v.S
	case dataset.Int64:
		return strconv.FormatInt(v.I, 10)
	case dataset.Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.String()
	}
}

// Merge implements AggState.
func (s *DistinctState) Merge(o AggState) {
	for k := range o.(*DistinctState).set {
		s.set[k] = struct{}{}
	}
}

// Value implements AggState, returning the distinct count.
func (s *DistinctState) Value() dataset.Value { return dataset.IntValue(int64(len(s.set))) }

// Clone implements AggState.
func (s *DistinctState) Clone() AggState {
	c := NewDistinctState()
	for k := range s.set {
		c.set[k] = struct{}{}
	}
	return c
}

// Keys returns the distinct value keys in ascending lexicographic order.
func (s *DistinctState) Keys() []string {
	out := make([]string, 0, len(s.set))
	for k := range s.set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
