package engine

import (
	"context"
	"fmt"

	"github.com/tabula-db/tabula/internal/dataset"
)

// EqPredicate is one equality predicate of a conjunctive filter.
type EqPredicate struct {
	Col   int
	Value dataset.Value
}

// CompileEqConjunction recognizes predicates of the form
// `a = lit AND b = lit AND …` and compiles them for FastEqFilter. The
// second return is false when the expression has any other shape.
func CompileEqConjunction(t *dataset.Table, pred Expr) ([]EqPredicate, bool) {
	var preds []EqPredicate
	var walk func(e Expr) bool
	walk = func(e Expr) bool {
		b, ok := e.(*Binary)
		if !ok {
			return false
		}
		switch b.Op {
		case OpAnd:
			return walk(b.L) && walk(b.R)
		case OpEq:
			cr, crOK := b.L.(*ColRef)
			lit, litOK := b.R.(*Lit)
			if !crOK || !litOK {
				cr, crOK = b.R.(*ColRef)
				lit, litOK = b.L.(*Lit)
			}
			if !crOK || !litOK || cr.Qualifier != "" {
				return false
			}
			col := t.Schema().ColumnIndex(cr.Name)
			if col < 0 {
				return false // let the generic path report the error
			}
			// Fast paths exist for exact-type matches only (plus int
			// literals on float columns).
			ft := t.Schema()[col].Type
			switch {
			case ft == dataset.String && lit.V.Type == dataset.String,
				ft == dataset.Int64 && lit.V.Type == dataset.Int64,
				ft == dataset.Float64 && (lit.V.Type == dataset.Float64 || lit.V.Type == dataset.Int64):
				preds = append(preds, EqPredicate{Col: col, Value: lit.V})
				return true
			default:
				return false
			}
		default:
			return false
		}
	}
	if pred == nil || !walk(pred) {
		return nil, false
	}
	return preds, true
}

// FastEqFilter scans the table once and returns the rows satisfying ALL
// equality predicates, using columnar fast paths: String predicates
// compare dictionary codes (one int32 comparison per row instead of a
// string), Int64 predicates compare against the raw column slice. This
// is the scan the dashboard baselines (SampleFirst, SampleOnTheFly,
// POIsam) pay per interaction.
//
// A predicate whose value does not occur in the column short-circuits to
// an empty result without scanning. The scan polls ctx periodically and
// aborts with ctx.Err() on cancellation.
func FastEqFilter(ctx context.Context, t *dataset.Table, preds []EqPredicate) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := t.NumRows()
	if len(preds) == 0 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out, nil
	}
	// Compile each predicate into a per-row test over columnar storage.
	type codeTest struct {
		codes []int32
		want  int32
	}
	type intTest struct {
		ints []int64
		want int64
	}
	type floatTest struct {
		floats []float64
		want   float64
	}
	var codeTests []codeTest
	var intTests []intTest
	var floatTests []floatTest
	for _, p := range preds {
		if p.Col < 0 || p.Col >= t.NumCols() {
			return nil, fmt.Errorf("engine: filter column %d out of range", p.Col)
		}
		f := t.Schema()[p.Col]
		switch f.Type {
		case dataset.String:
			if p.Value.Type != dataset.String {
				return nil, fmt.Errorf("engine: column %q filter needs a string value", f.Name)
			}
			codes, dict := t.StringCodes(p.Col)
			want := int32(-1)
			for c, s := range dict {
				if s == p.Value.S {
					want = int32(c)
					break
				}
			}
			if want < 0 {
				return nil, nil // value absent: empty result
			}
			codeTests = append(codeTests, codeTest{codes: codes, want: want})
		case dataset.Int64:
			if p.Value.Type != dataset.Int64 {
				return nil, fmt.Errorf("engine: column %q filter needs an integer value", f.Name)
			}
			intTests = append(intTests, intTest{ints: t.Ints(p.Col), want: p.Value.I})
		case dataset.Float64:
			if p.Value.Type != dataset.Float64 && p.Value.Type != dataset.Int64 {
				return nil, fmt.Errorf("engine: column %q filter needs a numeric value", f.Name)
			}
			floatTests = append(floatTests, floatTest{floats: t.Floats(p.Col), want: p.Value.Float()})
		default:
			return nil, fmt.Errorf("engine: cannot equality-filter %v column %q", f.Type, f.Name)
		}
	}
	var out []int32
rows:
	for i := 0; i < n; i++ {
		if i%cancelCheckRows == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, ct := range codeTests {
			if ct.codes[i] != ct.want {
				continue rows
			}
		}
		for _, it := range intTests {
			if it.ints[i] != it.want {
				continue rows
			}
		}
		for _, ft := range floatTests {
			if ft.floats[i] != ft.want {
				continue rows
			}
		}
		out = append(out, int32(i))
	}
	return out, nil
}
