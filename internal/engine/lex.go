package engine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the SQL dialect.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // + - * / = <> < <= > >= . , ( )
)

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

// keywords recognized by the dialect. GROUPBY appears as a single word in
// the paper's listings; both spellings are accepted.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "AGGREGATE": true, "AS": true,
	"SELECT": true, "FROM": true, "WHERE": true, "GROUPBY": true,
	"GROUP": true, "BY": true, "CUBE": true, "HAVING": true,
	"AND": true, "OR": true, "NOT": true, "RETURN": true,
	"BEGIN": true, "END": true, "LIMIT": true, "IN": true,
	"ORDER": true, "ASC": true, "DESC": true,
}

// lexer tokenizes a statement.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src fully, returning an error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '.':
			// Could be a number like ".5" or the qualifier dot.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				l.lexNumber()
			} else {
				l.pos++
				l.emit(tokOp, ".", start)
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("+-*/=,()", rune(c)):
			l.pos++
			l.emit(tokOp, string(c), start)
		case c == '<':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				l.pos++
			}
			l.emit(tokOp, l.src[start:l.pos], start)
		case c == '>':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.emit(tokOp, l.src[start:l.pos], start)
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.emit(tokOp, "<>", start)
			} else {
				return nil, fmt.Errorf("engine: unexpected '!' at position %d", l.pos)
			}
		case c == ';':
			l.pos++ // statement terminator, ignored
		default:
			return nil, fmt.Errorf("engine: unexpected character %q at position %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(tokKeyword, up, start)
	} else {
		l.emit(tokIdent, word, start)
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if next >= '0' && next <= '9' || next == '-' || next == '+' {
				l.pos += 2
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
		}
		break
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("engine: unterminated string starting at position %d", start)
}
