package engine

// Shard routing for the partitioned sampling cube: cell group-keys are
// hash-partitioned into a fixed number of shards, each maintained and
// versioned independently (per-shard generations). The routing must be
// a pure function of the key and the shard count — queries, appends,
// persistence, and the serving cache all derive a cell's shard
// independently and must agree forever.
//
// Raw group-keys make poor partition keys: mixed-radix encoding packs
// low-cardinality attributes into the low bits, so consecutive cells of
// one cuboid differ only in a few low bits and a plain modulo would
// pile whole cuboids onto few shards. The key is therefore finalized
// with the SplitMix64 avalanche function (Steele et al., "Fast
// Splittable Pseudorandom Number Generators"), which diffuses every
// input bit into the output before the modulo.

// shardMix is the SplitMix64 finalizer: a bijective avalanche over
// uint64, so distinct keys never collide before the modulo.
func shardMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOfKey maps a cell group-key to its shard in [0, n). It is
// deterministic across processes and Go versions; persisted cubes and
// cache keys depend on that stability. n must be >= 1.
func ShardOfKey(key uint64, n int) int {
	if n == 1 {
		return 0
	}
	return int(shardMix(key) % uint64(n))
}
