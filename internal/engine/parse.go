package engine

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tabula-db/tabula/internal/dataset"
)

// Statement is any parsed SQL statement of the Tabula dialect.
type Statement interface{ stmt() }

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// SelectStmt is a SELECT over one table: projection, optional WHERE,
// optional GROUP BY (plain or CUBE), optional HAVING and LIMIT.
type SelectStmt struct {
	Items     []SelectItem
	Star      bool
	From      string
	Where     Expr
	GroupBy   []string
	GroupCube bool
	Having    Expr
	// OrderBy names the sort column ("" when absent); OrderDesc flips
	// the direction.
	OrderBy   string
	OrderDesc bool
	Limit     int // -1 when absent
}

func (*SelectStmt) stmt() {}

// CreateSamplingCube is the Tabula initialization statement:
//
//	CREATE TABLE cube AS
//	SELECT a, b, c, SAMPLING(*, θ) AS sample
//	FROM tbl
//	GROUPBY CUBE(a, b, c)
//	HAVING loss(attr, Sam_global) > θ
type CreateSamplingCube struct {
	CubeName    string
	CubedAttrs  []string
	SampleAlias string
	Source      string
	LossName    string
	// TargetAttrs holds the loss function's target attribute(s): one for
	// scalar losses, two (x, y) for the regression loss.
	TargetAttrs []string
	Threshold   float64
}

// TargetAttr returns the first target attribute (the common case).
func (c *CreateSamplingCube) TargetAttr() string {
	if len(c.TargetAttrs) == 0 {
		return ""
	}
	return c.TargetAttrs[0]
}

func (*CreateSamplingCube) stmt() {}

// CreateTableAs is a plain CREATE TABLE name AS SELECT … (no SAMPLING):
// the SELECT runs against the catalog and its result is registered under
// the new name. Used to derive cube attributes (e.g. distance buckets)
// before initializing a sampling cube.
type CreateTableAs struct {
	Name   string
	Select *SelectStmt
}

func (*CreateTableAs) stmt() {}

// CreateAggregate is the user-defined accuracy-loss declaration:
//
//	CREATE AGGREGATE loss(Raw, Sam) RETURN decimal_value AS
//	BEGIN scalar_expression END
type CreateAggregate struct {
	Name    string
	RawName string
	SamName string
	Body    Expr
}

func (*CreateAggregate) stmt() {}

// Parse parses a single statement of the dialect.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input after statement")
	}
	return st, nil
}

// ParseExpr parses a standalone scalar expression (used by the loss DSL).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	t := p.cur()
	return fmt.Errorf("engine: parse error at position %d (near %q): %s", t.pos, t.text, msg)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tokOp && p.cur().text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected identifier")
	}
	return p.advance().text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.parseSelect()
	case p.acceptKeyword("CREATE"):
		if p.acceptKeyword("TABLE") {
			return p.parseCreateTable()
		}
		if p.acceptKeyword("AGGREGATE") {
			return p.parseCreateAggregate()
		}
		return nil, p.errorf("expected TABLE or AGGREGATE after CREATE")
	default:
		return nil, p.errorf("expected SELECT or CREATE")
	}
}

// parseSelect parses the remainder after the SELECT keyword.
func (p *parser) parseSelect() (*SelectStmt, error) {
	s := &SelectStmt{Limit: -1}
	if p.acceptOp("*") {
		s.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			s.Items = append(s.Items, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.From = from
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUPBY") || (p.acceptKeyword("GROUP") && p.acceptKeyword("BY")) {
		if p.acceptKeyword("CUBE") {
			s.GroupCube = true
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			s.GroupBy = cols
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			s.GroupBy = cols
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s.OrderBy = col
		if p.acceptKeyword("DESC") {
			s.OrderDesc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT value")
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

// parseCreateTable parses CREATE TABLE name AS SELECT …, yielding a
// CreateSamplingCube when the projection ends with SAMPLING(*, θ) and a
// plain CreateTableAs otherwise.
func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if sampleIdx := samplingItemIndex(sel); sampleIdx >= 0 {
		return selectToSamplingCube(p, name, sel, sampleIdx)
	}
	if sel.GroupCube {
		return nil, p.errorf("GROUP BY CUBE requires a SAMPLING(*, threshold) projection")
	}
	return &CreateTableAs{Name: name, Select: sel}, nil
}

// samplingItemIndex returns the projection index of the SAMPLING call, or
// -1 when the statement is a plain CTAS.
func samplingItemIndex(sel *SelectStmt) int {
	for i, item := range sel.Items {
		if call, ok := item.Expr.(*Call); ok && strings.EqualFold(call.Name, "SAMPLING") {
			return i
		}
	}
	return -1
}

// selectToSamplingCube validates and converts a parsed SELECT with a
// SAMPLING projection into the CreateSamplingCube statement the paper's
// Query 1 defines.
func selectToSamplingCube(p *parser, name string, sel *SelectStmt, sampleIdx int) (*CreateSamplingCube, error) {
	c := &CreateSamplingCube{CubeName: name, Source: sel.From}
	if sampleIdx != len(sel.Items)-1 {
		return nil, p.errorf("SAMPLING(*) must be the last projection")
	}
	call := sel.Items[sampleIdx].Expr.(*Call)
	if !call.Star || len(call.Args) != 1 {
		return nil, p.errorf("SAMPLING expects (*, threshold)")
	}
	lit, ok := call.Args[0].(*Lit)
	if !ok || !isNumeric(lit.V) {
		return nil, p.errorf("SAMPLING threshold must be a numeric literal")
	}
	c.Threshold = lit.V.Float()
	c.SampleAlias = sel.Items[sampleIdx].Alias
	for _, item := range sel.Items[:sampleIdx] {
		cr, ok := item.Expr.(*ColRef)
		if !ok || cr.Qualifier != "" {
			return nil, p.errorf("cube projections before SAMPLING must be plain attributes, got %s", item.Expr.String())
		}
		c.CubedAttrs = append(c.CubedAttrs, cr.Name)
	}
	if len(c.CubedAttrs) == 0 {
		return nil, p.errorf("initialization query needs at least one cubed attribute")
	}
	if !sel.GroupCube {
		return nil, p.errorf("initialization query requires GROUPBY CUBE(...)")
	}
	if len(sel.GroupBy) != len(c.CubedAttrs) {
		return nil, p.errorf("CUBE(%s) does not match the SELECT list attributes (%s)",
			strings.Join(sel.GroupBy, ", "), strings.Join(c.CubedAttrs, ", "))
	}
	for i := range sel.GroupBy {
		if !strings.EqualFold(sel.GroupBy[i], c.CubedAttrs[i]) {
			return nil, p.errorf("CUBE attribute %q does not match SELECT attribute %q", sel.GroupBy[i], c.CubedAttrs[i])
		}
	}
	if sel.Where != nil || sel.OrderBy != "" || sel.Limit >= 0 {
		return nil, p.errorf("initialization queries do not support WHERE, ORDER BY or LIMIT")
	}
	// HAVING lossName(target…, Sam_global) > θ.
	having, ok := sel.Having.(*Binary)
	if sel.Having == nil || !ok || having.Op != OpGt {
		return nil, p.errorf("initialization query requires HAVING loss(attr, Sam_global) > threshold")
	}
	lossCall, ok := having.L.(*Call)
	if !ok || lossCall.Star {
		return nil, p.errorf("HAVING must apply a loss function, got %s", having.L.String())
	}
	c.LossName = lossCall.Name
	if len(lossCall.Args) < 2 || len(lossCall.Args) > 3 {
		return nil, p.errorf("loss takes (target [, target2], Sam_global)")
	}
	for i, a := range lossCall.Args {
		cr, ok := a.(*ColRef)
		if !ok || cr.Qualifier != "" {
			return nil, p.errorf("loss arguments must be attribute names, got %s", a.String())
		}
		last := i == len(lossCall.Args)-1
		if last {
			if !strings.EqualFold(cr.Name, "Sam_global") && !strings.EqualFold(cr.Name, "Samglobal") {
				return nil, p.errorf("last loss argument must be Sam_global, got %q", cr.Name)
			}
		} else {
			c.TargetAttrs = append(c.TargetAttrs, cr.Name)
		}
	}
	thLit, ok := having.R.(*Lit)
	if !ok || !isNumeric(thLit.V) {
		return nil, p.errorf("HAVING threshold must be a numeric literal")
	}
	if thLit.V.Float() != c.Threshold {
		return nil, p.errorf("HAVING threshold %g differs from SAMPLING threshold %g", thLit.V.Float(), c.Threshold)
	}
	return c, nil
}

// parseCreateAggregate parses the loss-function DSL declaration after
// CREATE AGGREGATE.
func (p *parser) parseCreateAggregate() (*CreateAggregate, error) {
	c := &CreateAggregate{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	raw, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c.RawName = raw
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	sam, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c.SamName = sam
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	// The return type is a free identifier (decimal_value in the paper).
	if _, err := p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BEGIN"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	c.Body = body
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseNumber() (float64, error) {
	neg := false
	if p.acceptOp("-") {
		neg = true
	}
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected number")
	}
	f, err := strconv.ParseFloat(p.advance().text, 64)
	if err != nil {
		return 0, p.errorf("bad number: %v", err)
	}
	if neg {
		f = -f
	}
	return f, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= | <> | < | <= | > | >=) addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := number | string | ident[(args)] | ident.ident | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InList{X: l}
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.Values = append(in.Values, v)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
		return in, nil
	}
	if p.cur().kind == tokOp {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number: %v", err)
			}
			return &Lit{V: dataset.FloatValue(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Fits only as float.
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number: %v", err)
			}
			return &Lit{V: dataset.FloatValue(f)}, nil
		}
		return &Lit{V: dataset.IntValue(i)}, nil
	case tokString:
		p.advance()
		return &Lit{V: dataset.StringValue(t.text)}, nil
	case tokIdent:
		p.advance()
		name := t.text
		// Function call.
		if p.acceptOp("(") {
			call := &Call{Name: name}
			if p.acceptOp("*") {
				call.Star = true
				if p.acceptOp(",") {
					// Fall through to regular args.
				} else {
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					return call, nil
				}
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptOp(",") {
						continue
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		// Qualified reference.
		if p.acceptOp(".") {
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: name, Name: field}, nil
		}
		return &ColRef{Name: name}, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected expression")
}
