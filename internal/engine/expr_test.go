package engine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/tabula-db/tabula/internal/dataset"
)

// litEnv is an EvalEnv with fixed column bindings.
type litEnv map[string]dataset.Value

func (e litEnv) ColumnValue(q, name string) (dataset.Value, error) {
	key := name
	if q != "" {
		key = q + "." + name
	}
	if v, ok := e[key]; ok {
		return v, nil
	}
	if v, ok := e[name]; ok {
		return v, nil
	}
	return dataset.Value{}, ErrUnknownFunc
}

func (e litEnv) CallFunc(name string, args []dataset.Value) (dataset.Value, error) {
	return dataset.Value{}, ErrUnknownFunc
}

func evalStr(t *testing.T, src string, env EvalEnv) dataset.Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	env := litEnv{}
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"2 * 3 - 4 / 2", 4},
		{"-5 + 3", -2},
		{"ABS(-4.5)", 4.5},
		{"SQRT(16)", 4},
		{"POW(2, 10)", 1024},
		{"LEAST(3, 7)", 3},
		{"GREATEST(3, 7)", 7},
		{"DEGREES(ATAN(1))", 45},
		{"EXP(0)", 1},
		{"LN(1)", 0},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, env)
		if math.Abs(got.Float()-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.src, got.Float(), c.want)
		}
	}
}

func TestExprIntegerStaysIntegral(t *testing.T) {
	v := evalStr(t, "2 + 3 * 4", litEnv{})
	if v.Type != dataset.Int64 || v.I != 14 {
		t.Fatalf("got %+v, want BIGINT 14", v)
	}
}

func TestExprComparisons(t *testing.T) {
	env := litEnv{"x": dataset.FloatValue(5), "s": dataset.StringValue("cash")}
	truths := []string{
		"x = 5", "x <> 6", "x < 6", "x <= 5", "x > 4", "x >= 5",
		"s = 'cash'", "s <> 'credit'",
		"x = 5 AND s = 'cash'", "x = 9 OR s = 'cash'",
		"NOT (x = 9)",
	}
	for _, src := range truths {
		if !Truthy(evalStr(t, src, env)) {
			t.Errorf("%s should be true", src)
		}
	}
	falses := []string{"x = 6", "x < 5", "s = 'credit'", "x = 5 AND s = 'credit'"}
	for _, src := range falses {
		if Truthy(evalStr(t, src, env)) {
			t.Errorf("%s should be false", src)
		}
	}
}

func TestExprIntFloatComparison(t *testing.T) {
	// BIGINT 1 must equal DOUBLE 1.0 in predicates.
	env := litEnv{"c": dataset.IntValue(1)}
	if !Truthy(evalStr(t, "c = 1.0", env)) {
		t.Fatal("BIGINT 1 should equal 1.0")
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		"'a' + 1",
		"nosuchfunc(1)",
		"'a' < 1",
		"missingcol + 1",
	}
	for _, src := range bad {
		e, err := ParseExpr(src)
		if err != nil {
			continue // parse errors also acceptable for this list
		}
		if _, err := Eval(e, litEnv{}); err == nil {
			t.Errorf("%s should fail to evaluate", src)
		}
	}
}

func TestExprStringQuoting(t *testing.T) {
	v := evalStr(t, "'it''s'", litEnv{})
	if v.S != "it's" {
		t.Fatalf("got %q", v.S)
	}
}

// Parse→print→parse must be a fixpoint and evaluate identically.
func TestExprPrintParseFixpoint(t *testing.T) {
	srcs := []string{
		"ABS(AVG(Raw) - AVG(Sam)) / AVG(Raw)",
		"1 + 2 * (3 - x) / y",
		"a = 1 AND b = 'cash' OR NOT (c >= 2.5)",
		"COUNT(*)",
		"loss(pickup, Sam_global) > 0.1",
		"-x + 4",
	}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := e1.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if e2.String() != printed {
			t.Errorf("fixpoint violated: %q -> %q -> %q", src, printed, e2.String())
		}
	}
}

func TestExprColumns(t *testing.T) {
	e, err := ParseExpr("a + b * ABS(c) - a")
	if err != nil {
		t.Fatal(err)
	}
	cols := ExprColumns(e)
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	want := map[string]bool{"a": true, "b": true, "c": true}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestExprRandomArithProperty(t *testing.T) {
	// (a+b)*c evaluated through the AST matches Go arithmetic.
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		env := litEnv{
			"a": dataset.FloatValue(a),
			"b": dataset.FloatValue(b),
			"c": dataset.FloatValue(c),
		}
		e, err := ParseExpr("(a + b) * c")
		if err != nil {
			return false
		}
		v, err := Eval(e, env)
		if err != nil {
			return false
		}
		want := (a + b) * c
		if math.IsNaN(want) {
			return math.IsNaN(v.Float())
		}
		return v.Float() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("a -- comment\n + 1")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	if strings.Join(texts, " ") != "a + 1" {
		t.Fatalf("tokens = %v", texts)
	}
}
