package respcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetFillsOnceAndHits(t *testing.T) {
	c := New(1 << 20)
	fills := 0
	fill := func() ([]byte, error) { fills++; return []byte("payload"), nil }
	for i := 0; i < 5; i++ {
		b, err := c.Get("k", fill)
		if err != nil || string(b) != "payload" {
			t.Fatalf("get %d: %q %v", i, b, err)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len("payload")) {
		t.Fatalf("stats %+v", st)
	}
}

// TestConcurrentFirstHitEncodesOnce pins the singleflight contract: N
// goroutines missing the same key concurrently run exactly one fill and
// all observe its result. The fill blocks until every goroutine has
// arrived, so without dedup the fill count could not stay at 1.
func TestConcurrentFirstHitEncodesOnce(t *testing.T) {
	const n = 32
	c := New(1 << 20)
	var fills atomic.Int64
	arrived := make(chan struct{})
	var once sync.Once
	fill := func() ([]byte, error) {
		fills.Add(1)
		<-arrived // hold the flight open until all waiters have joined
		return []byte("hot"), nil
	}
	var wg sync.WaitGroup
	var joined atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if joined.Add(1) == n {
				once.Do(func() { close(arrived) })
			}
			b, err := c.Get("cell", fill)
			if err != nil || string(b) != "hot" {
				t.Errorf("get: %q %v", b, err)
			}
		}()
	}
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times under concurrency, want 1", got)
	}
}

func TestByteBudgetEvicts(t *testing.T) {
	c := New(100)
	val := func(i int) func() ([]byte, error) {
		return func() ([]byte, error) { return make([]byte, 40), nil }
	}
	for i := 0; i < 3; i++ { // 120 bytes > 100 budget
		if _, err := c.Get(fmt.Sprintf("k%d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// k0 was least recently used and must be the one evicted.
	if _, ok := c.Peek("k0"); ok {
		t.Fatal("k0 survived eviction")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestLRUOrderRespectsUse(t *testing.T) {
	c := New(100)
	fill := func() ([]byte, error) { return make([]byte, 40), nil }
	c.Get("a", fill)
	c.Get("b", fill)
	c.Get("a", fill) // touch a → b is now LRU
	c.Get("c", fill) // overflow evicts b
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("a should have survived")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(10)
	b, err := c.Get("big", func() ([]byte, error) { return make([]byte, 50), nil })
	if err != nil || len(b) != 50 {
		t.Fatalf("oversized get: %d %v", len(b), err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized value cached: %+v", st)
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	wantErr := fmt.Errorf("boom")
	if _, err := c.Get("k", func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v", err)
	}
	// The key must stay missing so the next Get retries the fill.
	b, err := c.Get("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(b) != "ok" {
		t.Fatalf("retry: %q %v", b, err)
	}
}

func TestNilCacheAlwaysFills(t *testing.T) {
	var c *Cache
	fills := 0
	for i := 0; i < 3; i++ {
		b, err := c.Get("k", func() ([]byte, error) { fills++; return []byte("x"), nil })
		if err != nil || string(b) != "x" {
			t.Fatal("nil cache get failed")
		}
	}
	if fills != 3 {
		t.Fatalf("nil cache filled %d times, want 3", fills)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	c.Reset() // must not panic
}

func TestReset(t *testing.T) {
	c := New(1 << 20)
	c.Get("k", func() ([]byte, error) { return []byte("v"), nil })
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	fills := 0
	c.Get("k", func() ([]byte, error) { fills++; return []byte("v"), nil })
	if fills != 1 {
		t.Fatal("reset did not drop entry")
	}
}
