// Package respcache is a byte-budget LRU cache of fully encoded HTTP
// response payloads for the serving layer.
//
// The cache exploits the core package's snapshot invariant: a published
// cube snapshot and every sample table in it are immutable, and
// {shard, shard generation, sampleID} names one byte-identical payload
// forever. Keys embed that identity, so the cache needs no explicit
// invalidation — an Append publishes a successor snapshot that bumps
// only the generations of the shards it touched, new requests for those
// shards key under the new generations, and the stale entries simply go
// cold and fall out of the LRU. Entries keyed to untouched shards keep
// their identities and stay hot across the append. Coherence costs zero
// locks on the cube side and one short mutex hold here.
//
// First hits are deduplicated singleflight-style: when N requests miss
// the same key concurrently, one caller runs the encode and the other
// N-1 block on it and share the result, so a popular cell arriving in a
// thundering herd (a dashboard pan fanning out to many users) is encoded
// exactly once per snapshot.
package respcache

import (
	"container/list"
	"sync"

	"github.com/tabula-db/tabula/internal/obs"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
	// Hits, Misses and Evictions are cumulative. A request that joins an
	// in-flight encode counts as a Shared, not a Hit or a Miss.
	Hits      int64
	Misses    int64
	Shared    int64
	Evictions int64
}

// Cache is a byte-budget LRU of immutable byte payloads with
// singleflight fill deduplication. The zero value is not usable; use
// New. A nil *Cache is a valid always-miss cache: Get runs fill every
// time (serving stays correct with caching disabled).
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	order   *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element
	flight  map[string]*call
	stats   Stats
}

type entry struct {
	key string
	val []byte
}

type call struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// New creates a cache holding at most budget bytes of payload (key and
// bookkeeping overhead is not counted). A budget <= 0 returns nil, the
// always-miss cache.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		flight:  make(map[string]*call),
	}
}

// Get returns the payload cached under key, filling it with fill on a
// miss. Concurrent Gets for the same missing key run fill once and share
// its result. A fill error is returned to every waiter and nothing is
// cached, so a transient failure does not poison the key. The returned
// slice is shared and MUST NOT be modified by callers.
func (c *Cache) Get(key string, fill func() ([]byte, error)) ([]byte, error) {
	if c == nil {
		return fill()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, nil
	}
	if cl, ok := c.flight[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		cl.wg.Wait()
		return cl.val, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.flight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	val, err := fill()
	cl.val, cl.err = val, err
	cl.wg.Done()

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		c.insert(key, val)
	}
	c.mu.Unlock()
	return val, err
}

// Peek returns the payload cached under key without filling, for tests
// and introspection. It still counts as a use for LRU ordering.
func (c *Cache) Peek(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// insert stores val under key and evicts from the LRU tail until the
// budget holds. Caller holds c.mu. An oversized value (> budget) is not
// cached at all rather than evicting everything for a single entry.
func (c *Cache) insert(key string, val []byte) {
	if int64(len(val)) > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A racing fill of the same key already landed; keep the newer
		// bytes (they are identical by the immutability contract).
		c.bytes += int64(len(val)) - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.budget {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val))
		c.stats.Evictions++
	}
}

// Reset drops every cached entry (in-flight fills are unaffected and
// will insert into the emptied cache). Counters are preserved.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element)
	c.bytes = 0
}

// RegisterMetrics registers the cache's effectiveness counters into reg
// as sampled series read from Stats() at scrape time:
//
//	tabula_respcache_hits_total / _misses_total / _evictions_total
//	tabula_respcache_coalesced_total   (singleflight waiters that shared
//	                                    an in-flight fill)
//	tabula_respcache_entries / tabula_respcache_bytes (residency gauges)
//
// Sampling at scrape time means the metrics surface costs the Get hot
// path nothing — the counters the cache already maintains under its
// mutex ARE the exported numbers, so benchmark reports (MeasureServing)
// and /metrics can be asserted against each other without drift. Both
// receivers are nil-safe: a nil cache (caching disabled) registers
// all-zero series, a nil registry registers nothing.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("tabula_respcache_hits_total", "Response-cache hits.",
		func() float64 { return float64(c.Stats().Hits) })
	reg.CounterFunc("tabula_respcache_misses_total", "Response-cache misses (fills run).",
		func() float64 { return float64(c.Stats().Misses) })
	reg.CounterFunc("tabula_respcache_evictions_total", "Response-cache LRU evictions.",
		func() float64 { return float64(c.Stats().Evictions) })
	reg.CounterFunc("tabula_respcache_coalesced_total", "Requests that joined an in-flight singleflight fill.",
		func() float64 { return float64(c.Stats().Shared) })
	reg.GaugeFunc("tabula_respcache_entries", "Response-cache resident entries.",
		func() float64 { return float64(c.Stats().Entries) })
	reg.GaugeFunc("tabula_respcache_bytes", "Response-cache resident payload bytes.",
		func() float64 { return float64(c.Stats().Bytes) })
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	return st
}
