package dataset

import (
	"math"
	"testing"
)

// FuzzParseValue asserts the display-form value parser — the entry
// point every WHERE condition passes through on the QueryByValues
// path — never panics on arbitrary input, and that any value it
// accepts survives a print→parse round trip (so query responses can
// echo predicate values verbatim). Run with
// `go test -fuzz FuzzParseValue ./internal/dataset` for continuous
// fuzzing; the seed corpus runs as part of the ordinary test suite.
func FuzzParseValue(f *testing.F) {
	seeds := []struct {
		typ int
		s   string
	}{
		{int(Int64), "42"}, {int(Int64), "-9223372036854775808"}, {int(Int64), "x"},
		{int(Float64), "3.25"}, {int(Float64), "-1.5e-3"}, {int(Float64), "NaN"}, {int(Float64), "+Inf"},
		{int(String), ""}, {int(String), "credit"}, {int(String), "[10,15)"},
		{int(Point), "-73.78 40.64"}, {int(Point), "1"}, {int(Point), "a b"}, {int(Point), "1e308 -0"},
		{99, "anything"},
	}
	for _, s := range seeds {
		f.Add(s.typ, s.s)
	}
	f.Fuzz(func(t *testing.T, typ int, s string) {
		v, err := ParseValue(Type(typ), s)
		if err != nil {
			return
		}
		if v.Type != Type(typ) {
			t.Fatalf("ParseValue(%d, %q) returned a value of type %d", typ, s, int(v.Type))
		}
		if parsedNaN(v) {
			return // NaN never compares equal; accepting it is fine, round-tripping is not defined
		}
		printed := v.String()
		back, err := ParseValue(Type(typ), printed)
		if err != nil {
			t.Fatalf("printed value does not reparse: %q -> %q: %v", s, printed, err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip changed the value: %q -> %q -> %q", s, printed, back.String())
		}
	})
}

func parsedNaN(v Value) bool {
	switch v.Type {
	case Float64:
		return math.IsNaN(v.F)
	case Point:
		return math.IsNaN(v.P.X) || math.IsNaN(v.P.Y)
	}
	return false
}
