// Package dataset implements the in-memory columnar storage substrate that
// the Tabula middleware and its SQL-subset engine run on. A Table stores
// typed columns (int64, float64, dictionary-encoded string, geospatial
// point); a View is a cheap row-subset of a Table used to pass query
// results and cube-cell populations around without copying data.
//
// The package also provides exact memory-footprint accounting (the paper's
// "memory footprint" metric), CSV import/export, and a compact binary
// persistence format so a sampling cube survives middleware restarts.
package dataset

import (
	"fmt"

	"github.com/tabula-db/tabula/internal/geo"
)

// Type enumerates the column types supported by the engine.
type Type int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a double-precision column.
	Float64
	// String is a dictionary-encoded categorical column.
	String
	// Point is a 2-D geospatial point column.
	Point
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Point:
		return "POINT"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// ColumnIndex returns the position of the named field, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the field with the given name.
func (s Schema) Field(name string) (Field, bool) {
	if i := s.ColumnIndex(name); i >= 0 {
		return s[i], true
	}
	return Field{}, false
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Value is a dynamically typed scalar: exactly one of the payload fields is
// meaningful, selected by Type. The zero Value is the Int64 zero.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
	P    geo.Point
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Type: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Type: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Type: String, S: v} }

// PointValue wraps a geo.Point.
func PointValue(p geo.Point) Value { return Value{Type: Point, P: p} }

// Float coerces numeric values to float64; it panics on non-numeric types,
// which indicates a query-planning bug rather than bad data.
func (v Value) Float() float64 {
	switch v.Type {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	default:
		panic(fmt.Sprintf("dataset: Float() on %v value", v.Type))
	}
}

// String renders the value for display and CSV export.
func (v Value) String() string {
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	case Point:
		return fmt.Sprintf("%g %g", v.P.X, v.P.Y)
	default:
		return fmt.Sprintf("Value(%d)", int(v.Type))
	}
}

// Equal reports whether two values are identical in type and payload.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	case Point:
		return v.P == o.P
	default:
		return false
	}
}

// Less imposes a total order within one type (for sorting group keys).
func (v Value) Less(o Value) bool {
	if v.Type != o.Type {
		return v.Type < o.Type
	}
	switch v.Type {
	case Int64:
		return v.I < o.I
	case Float64:
		return v.F < o.F
	case String:
		return v.S < o.S
	case Point:
		if v.P.X != o.P.X {
			return v.P.X < o.P.X
		}
		return v.P.Y < o.P.Y
	default:
		return false
	}
}

// column is the internal storage for one table column.
type column struct {
	typ    Type
	ints   []int64
	floats []float64
	codes  []int32 // dictionary codes for String columns
	dict   []string
	dictID map[string]int32
	points []geo.Point
}

func newColumn(t Type) *column {
	c := &column{typ: t}
	if t == String {
		c.dictID = make(map[string]int32)
	}
	return c
}

func (c *column) len() int {
	switch c.typ {
	case Int64:
		return len(c.ints)
	case Float64:
		return len(c.floats)
	case String:
		return len(c.codes)
	case Point:
		return len(c.points)
	}
	return 0
}

func (c *column) append(v Value) error {
	if v.Type != c.typ {
		return fmt.Errorf("dataset: appending %v value to %v column", v.Type, c.typ)
	}
	switch c.typ {
	case Int64:
		c.ints = append(c.ints, v.I)
	case Float64:
		c.floats = append(c.floats, v.F)
	case String:
		id, ok := c.dictID[v.S]
		if !ok {
			id = int32(len(c.dict))
			c.dict = append(c.dict, v.S)
			c.dictID[v.S] = id
		}
		c.codes = append(c.codes, id)
	case Point:
		c.points = append(c.points, v.P)
	}
	return nil
}

func (c *column) value(row int) Value {
	switch c.typ {
	case Int64:
		return IntValue(c.ints[row])
	case Float64:
		return FloatValue(c.floats[row])
	case String:
		return StringValue(c.dict[c.codes[row]])
	case Point:
		return PointValue(c.points[row])
	}
	panic("dataset: bad column type")
}

// footprint returns the column's in-memory size in bytes, counting slice
// backing arrays, dictionary strings, and map overhead approximations.
func (c *column) footprint() int64 {
	var b int64
	b += int64(cap(c.ints)) * 8
	b += int64(cap(c.floats)) * 8
	b += int64(cap(c.codes)) * 4
	b += int64(cap(c.points)) * 16
	for _, s := range c.dict {
		b += int64(len(s)) + 16 // string header
	}
	if c.dictID != nil {
		b += int64(len(c.dictID)) * 48 // rough per-entry map cost
	}
	return b
}

// Table is an append-only columnar table.
type Table struct {
	schema Schema
	cols   []*column
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	t := &Table{schema: schema.Clone()}
	t.cols = make([]*column, len(schema))
	for i, f := range schema {
		t.cols[i] = newColumn(f.Type)
	}
	return t
}

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// AppendRow appends one row; values must match the schema positionally.
func (t *Table) AppendRow(values ...Value) error {
	if len(values) != len(t.cols) {
		return fmt.Errorf("dataset: AppendRow got %d values for %d columns", len(values), len(t.cols))
	}
	for i, v := range values {
		if err := t.cols[i].append(v); err != nil {
			return fmt.Errorf("column %q: %w", t.schema[i].Name, err)
		}
	}
	return nil
}

// MustAppendRow is AppendRow that panics on schema mismatch; intended for
// generators and tests where the schema is static.
func (t *Table) MustAppendRow(values ...Value) {
	if err := t.AppendRow(values...); err != nil {
		panic(err)
	}
}

// AppendTable bulk-appends every row of src to t, copying whole column
// slices instead of boxing values row by row: numeric and point columns
// append their backing arrays directly, and string columns remap src's
// dictionary codes through one code-to-code table (built once per
// column, not once per row). Column types must match positionally; the
// schema is validated before any column is touched, so a mismatch
// leaves t unchanged.
func (t *Table) AppendTable(src *Table) error {
	if len(src.cols) != len(t.cols) {
		return fmt.Errorf("dataset: AppendTable got %d columns, table has %d", len(src.cols), len(t.cols))
	}
	for i := range t.cols {
		if src.cols[i].typ != t.cols[i].typ {
			return fmt.Errorf("dataset: AppendTable column %q is %v, table expects %v",
				src.schema[i].Name, src.cols[i].typ, t.cols[i].typ)
		}
	}
	for i, c := range t.cols {
		s := src.cols[i]
		switch c.typ {
		case Int64:
			c.ints = append(c.ints, s.ints...)
		case Float64:
			c.floats = append(c.floats, s.floats...)
		case Point:
			c.points = append(c.points, s.points...)
		case String:
			remap := make([]int32, len(s.dict))
			for j, str := range s.dict {
				id, ok := c.dictID[str]
				if !ok {
					id = int32(len(c.dict))
					c.dict = append(c.dict, str)
					c.dictID[str] = id
				}
				remap[j] = id
			}
			for _, code := range s.codes {
				c.codes = append(c.codes, remap[code])
			}
		}
	}
	return nil
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) Value { return t.cols[col].value(row) }

// Ints returns the backing int64 slice of column col; it panics if the
// column is not Int64. The caller must not mutate the slice.
func (t *Table) Ints(col int) []int64 {
	c := t.cols[col]
	if c.typ != Int64 {
		panic(fmt.Sprintf("dataset: Ints on %v column %q", c.typ, t.schema[col].Name))
	}
	return c.ints
}

// Floats returns the backing float64 slice of column col; it panics if the
// column is not Float64.
func (t *Table) Floats(col int) []float64 {
	c := t.cols[col]
	if c.typ != Float64 {
		panic(fmt.Sprintf("dataset: Floats on %v column %q", c.typ, t.schema[col].Name))
	}
	return c.floats
}

// Points returns the backing point slice of column col; it panics if the
// column is not Point.
func (t *Table) Points(col int) []geo.Point {
	c := t.cols[col]
	if c.typ != Point {
		panic(fmt.Sprintf("dataset: Points on %v column %q", c.typ, t.schema[col].Name))
	}
	return c.points
}

// StringCodes exposes the dictionary codes and dictionary of a String
// column, enabling O(1) categorical grouping. It panics on other types.
func (t *Table) StringCodes(col int) (codes []int32, dict []string) {
	c := t.cols[col]
	if c.typ != String {
		panic(fmt.Sprintf("dataset: StringCodes on %v column %q", c.typ, t.schema[col].Name))
	}
	return c.codes, c.dict
}

// DictSize returns the cardinality of a String column's dictionary.
func (t *Table) DictSize(col int) int {
	c := t.cols[col]
	if c.typ != String {
		panic("dataset: DictSize on non-string column")
	}
	return len(c.dict)
}

// Footprint returns the table's total in-memory size in bytes.
func (t *Table) Footprint() int64 {
	var b int64 = 64 // struct overhead
	for _, c := range t.cols {
		b += c.footprint()
	}
	return b
}

// Row materializes row i as a value slice (mostly for tests and display).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cols[c].value(i)
	}
	return out
}

// View is a subset of a table's rows, identified by row ids. A nil Rows
// slice with All=true denotes the full table, avoiding an O(N) id list for
// whole-table operations.
type View struct {
	Table *Table
	Rows  []int32
	All   bool
}

// FullView returns a view over every row of t.
func FullView(t *Table) View { return View{Table: t, All: true} }

// NewView returns a view over the given row ids of t.
func NewView(t *Table, rows []int32) View { return View{Table: t, Rows: rows} }

// Len returns the number of rows in the view.
func (v View) Len() int {
	if v.All {
		return v.Table.NumRows()
	}
	return len(v.Rows)
}

// RowID maps a view-relative index to a table row id.
func (v View) RowID(i int) int32 {
	if v.All {
		return int32(i)
	}
	return v.Rows[i]
}

// Value returns the value at view row i, column col.
func (v View) Value(i, col int) Value { return v.Table.Value(int(v.RowID(i)), col) }

// Materialize copies the view's rows into a standalone table. Samples
// persisted in the sampling cube are materialized so they survive after the
// raw table is released.
func (v View) Materialize() *Table {
	out := NewTable(v.Table.Schema())
	n := v.Len()
	for i := 0; i < n; i++ {
		row := int(v.RowID(i))
		vals := make([]Value, v.Table.NumCols())
		for c := range vals {
			vals[c] = v.Table.Value(row, c)
		}
		out.MustAppendRow(vals...)
	}
	return out
}

// FloatsOf extracts column col of the view as a float slice (numeric
// columns only).
func (v View) FloatsOf(col int) []float64 {
	n := v.Len()
	out := make([]float64, n)
	typ := v.Table.schema[col].Type
	switch typ {
	case Float64:
		fs := v.Table.Floats(col)
		for i := 0; i < n; i++ {
			out[i] = fs[v.RowID(i)]
		}
	case Int64:
		is := v.Table.Ints(col)
		for i := 0; i < n; i++ {
			out[i] = float64(is[v.RowID(i)])
		}
	default:
		panic(fmt.Sprintf("dataset: FloatsOf on %v column", typ))
	}
	return out
}

// PointsOf extracts column col of the view as a point slice.
func (v View) PointsOf(col int) []geo.Point {
	ps := v.Table.Points(col)
	n := v.Len()
	out := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		out[i] = ps[v.RowID(i)]
	}
	return out
}
