package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/tabula-db/tabula/internal/geo"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: Int64},
		{Name: "fare", Type: Float64},
		{Name: "payment", Type: String},
		{Name: "pickup", Type: Point},
	}
}

func buildTestTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := NewTable(testSchema())
	r := rand.New(rand.NewSource(11))
	payments := []string{"cash", "credit", "dispute"}
	for i := 0; i < n; i++ {
		tbl.MustAppendRow(
			IntValue(int64(i)),
			FloatValue(r.Float64()*50),
			StringValue(payments[r.Intn(len(payments))]),
			PointValue(geo.Point{X: -74 + r.Float64(), Y: 40 + r.Float64()}),
		)
	}
	return tbl
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema()
	if got := s.ColumnIndex("payment"); got != 2 {
		t.Fatalf("ColumnIndex(payment) = %d, want 2", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Fatalf("ColumnIndex(missing) = %d, want -1", got)
	}
	f, ok := s.Field("fare")
	if !ok || f.Type != Float64 {
		t.Fatalf("Field(fare) = %+v, %v", f, ok)
	}
	c := s.Clone()
	c[0].Name = "changed"
	if s[0].Name != "id" {
		t.Fatal("Clone did not deep-copy")
	}
}

func TestAppendAndRead(t *testing.T) {
	tbl := buildTestTable(t, 100)
	if tbl.NumRows() != 100 || tbl.NumCols() != 4 {
		t.Fatalf("rows/cols = %d/%d", tbl.NumRows(), tbl.NumCols())
	}
	v := tbl.Value(5, 0)
	if v.Type != Int64 || v.I != 5 {
		t.Fatalf("Value(5,0) = %+v", v)
	}
	row := tbl.Row(5)
	if len(row) != 4 || !row[0].Equal(IntValue(5)) {
		t.Fatalf("Row(5) = %+v", row)
	}
}

func TestAppendRowErrors(t *testing.T) {
	tbl := NewTable(testSchema())
	if err := tbl.AppendRow(IntValue(1)); err == nil {
		t.Fatal("want arity error")
	}
	err := tbl.AppendRow(FloatValue(1), FloatValue(1), StringValue("x"), PointValue(geo.Point{}))
	if err == nil || !strings.Contains(err.Error(), "id") {
		t.Fatalf("want type error naming column id, got %v", err)
	}
}

func TestDictionaryEncoding(t *testing.T) {
	tbl := buildTestTable(t, 1000)
	codes, dict := tbl.StringCodes(2)
	if len(codes) != 1000 {
		t.Fatalf("len(codes) = %d", len(codes))
	}
	if len(dict) != 3 || tbl.DictSize(2) != 3 {
		t.Fatalf("dict = %v", dict)
	}
	for i, c := range codes {
		if dict[c] != tbl.Value(i, 2).S {
			t.Fatalf("row %d: code %d -> %q, Value -> %q", i, c, dict[c], tbl.Value(i, 2).S)
		}
	}
}

func TestTypedAccessorsPanicOnWrongType(t *testing.T) {
	tbl := buildTestTable(t, 10)
	for name, f := range map[string]func(){
		"Ints":        func() { tbl.Ints(1) },
		"Floats":      func() { tbl.Floats(0) },
		"Points":      func() { tbl.Points(2) },
		"StringCodes": func() { tbl.StringCodes(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on wrong type should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestValueEqualAndLess(t *testing.T) {
	cases := []struct{ a, b Value }{
		{IntValue(1), IntValue(2)},
		{FloatValue(1.5), FloatValue(2.5)},
		{StringValue("a"), StringValue("b")},
		{PointValue(geo.Point{X: 0, Y: 0}), PointValue(geo.Point{X: 1, Y: 0})},
	}
	for _, c := range cases {
		if !c.a.Equal(c.a) || c.a.Equal(c.b) {
			t.Errorf("Equal broken for %v vs %v", c.a, c.b)
		}
		if !c.a.Less(c.b) || c.b.Less(c.a) {
			t.Errorf("Less broken for %v vs %v", c.a, c.b)
		}
	}
	if IntValue(1).Equal(FloatValue(1)) {
		t.Error("cross-type Equal should be false")
	}
}

func TestViewBasics(t *testing.T) {
	tbl := buildTestTable(t, 50)
	full := FullView(tbl)
	if full.Len() != 50 || full.RowID(7) != 7 {
		t.Fatalf("full view wrong: len=%d", full.Len())
	}
	v := NewView(tbl, []int32{3, 10, 20})
	if v.Len() != 3 {
		t.Fatalf("view len = %d", v.Len())
	}
	if got := v.Value(1, 0); got.I != 10 {
		t.Fatalf("view Value(1,0) = %+v", got)
	}
	m := v.Materialize()
	if m.NumRows() != 3 || m.Value(2, 0).I != 20 {
		t.Fatalf("materialized = %d rows, Value(2,0)=%+v", m.NumRows(), m.Value(2, 0))
	}
}

func TestViewExtractors(t *testing.T) {
	tbl := buildTestTable(t, 30)
	v := NewView(tbl, []int32{0, 1, 2})
	fares := v.FloatsOf(1)
	ids := v.FloatsOf(0) // int column extracted as floats
	pts := v.PointsOf(3)
	if len(fares) != 3 || len(ids) != 3 || len(pts) != 3 {
		t.Fatal("wrong extract lengths")
	}
	if ids[2] != 2 {
		t.Fatalf("ids[2] = %v", ids[2])
	}
	if fares[0] != tbl.Value(0, 1).F {
		t.Fatalf("fares[0] = %v", fares[0])
	}
	if pts[1] != tbl.Value(1, 3).P {
		t.Fatalf("pts[1] = %v", pts[1])
	}
}

func TestFootprintGrowsWithRows(t *testing.T) {
	small := buildTestTable(t, 10)
	big := buildTestTable(t, 10000)
	if small.Footprint() <= 0 {
		t.Fatal("footprint should be positive")
	}
	if big.Footprint() <= small.Footprint() {
		t.Fatalf("footprint not monotone: %d vs %d", small.Footprint(), big.Footprint())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := buildTestTable(t, 200)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tbl, got)
}

func TestCSVSchemaMismatch(t *testing.T) {
	csvData := "a,b\n1,2\n"
	_, err := ReadCSV(strings.NewReader(csvData), Schema{{Name: "a", Type: Int64}})
	if err == nil {
		t.Fatal("want column-count error")
	}
	_, err = ReadCSV(strings.NewReader(csvData), Schema{{Name: "x", Type: Int64}, {Name: "b", Type: Int64}})
	if err == nil {
		t.Fatal("want column-name error")
	}
	_, err = ReadCSV(strings.NewReader("a\nnot-a-number\n"), Schema{{Name: "a", Type: Int64}})
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tbl := buildTestTable(t, 500)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, tbl, got)
}

func TestBinaryRejectsCorruptHeader(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("want bad-magic error")
	}
	tbl := buildTestTable(t, 5)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // clobber version
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("want version error")
	}
}

func TestBinaryEmptyTable(t *testing.T) {
	tbl := NewTable(testSchema())
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.NumCols() != 4 {
		t.Fatalf("empty round trip = %d rows %d cols", got.NumRows(), got.NumCols())
	}
}

func TestParseValueProperty(t *testing.T) {
	f := func(i int64, fl float64, s string) bool {
		vi, err := ParseValue(Int64, IntValue(i).String())
		if err != nil || vi.I != i {
			return false
		}
		vf, err := ParseValue(Float64, FloatValue(fl).String())
		if err != nil || vf.F != fl {
			return false
		}
		vs, err := ParseValue(String, s)
		return err == nil && vs.S == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, c := range []struct {
		typ Type
		in  string
	}{
		{Int64, "abc"},
		{Float64, "xyz"},
		{Point, "1"},
		{Point, "a b"},
		{Point, "1 b"},
	} {
		if _, err := ParseValue(c.typ, c.in); err == nil {
			t.Errorf("ParseValue(%v, %q) should fail", c.typ, c.in)
		}
	}
}

func assertTablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if want.NumRows() != got.NumRows() || want.NumCols() != got.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", want.NumRows(), want.NumCols(), got.NumRows(), got.NumCols())
	}
	for r := 0; r < want.NumRows(); r++ {
		for c := 0; c < want.NumCols(); c++ {
			if !want.Value(r, c).Equal(got.Value(r, c)) {
				t.Fatalf("cell (%d,%d): %v vs %v", r, c, want.Value(r, c), got.Value(r, c))
			}
		}
	}
}

// Truncating a binary table stream at any offset must error, not panic.
func TestReadBinaryTruncated(t *testing.T) {
	tbl := buildTestTable(t, 50)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, off := range []int{0, 2, 4, 6, 9, 20, len(full) / 3, len(full) - 2} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadBinary panicked at %d: %v", off, r)
				}
			}()
			if _, err := ReadBinary(bytes.NewReader(full[:off])); err == nil {
				t.Errorf("ReadBinary of %d bytes should fail", off)
			}
		}()
	}
}
