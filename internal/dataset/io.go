package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/tabula-db/tabula/internal/geo"
)

// WriteCSV writes the table with a header row. Point columns are encoded
// as "x y" in a single field.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema))
	for i, f := range t.schema {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := t.NumRows()
	rec := make([]string, len(t.schema))
	for r := 0; r < n; r++ {
		for c := range t.schema {
			rec[c] = t.Value(r, c).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV, using the supplied schema to
// type the fields. The header row must match the schema's column names.
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), len(schema))
	}
	for i, name := range header {
		if name != schema[i].Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, name, schema[i].Name)
		}
	}
	t := NewTable(schema)
	vals := make([]Value, len(schema))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		for c, field := range rec {
			v, err := ParseValue(schema[c].Type, field)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, schema[c].Name, err)
			}
			vals[c] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ParseValue parses the textual form of a value of the given type.
func ParseValue(typ Type, s string) (Value, error) {
	switch typ {
	case Int64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as BIGINT: %w", s, err)
		}
		return IntValue(i), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as DOUBLE: %w", s, err)
		}
		return FloatValue(f), nil
	case String:
		return StringValue(s), nil
	case Point:
		parts := strings.Fields(s)
		if len(parts) != 2 {
			return Value{}, fmt.Errorf("parsing %q as POINT: want \"x y\"", s)
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing point x %q: %w", parts[0], err)
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing point y %q: %w", parts[1], err)
		}
		return PointValue(geo.Point{X: x, Y: y}), nil
	default:
		return Value{}, fmt.Errorf("dataset: unknown type %v", typ)
	}
}

// Binary persistence format (little-endian):
//
//	magic "TABD" | version u16 | ncols u16
//	per column: nameLen u16 | name | type u8
//	nrows u64
//	per column: payload
//	  Int64/Float64: nrows * 8 bytes
//	  Point:         nrows * 16 bytes
//	  String:        dictLen u32, per entry (len u32, bytes), then nrows * 4 code bytes
const (
	binaryMagic   = "TABD"
	binaryVersion = 1
)

// WriteBinary serializes the table in the compact binary format.
func (t *Table) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(binaryVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.schema))); err != nil {
		return err
	}
	for _, f := range t.schema {
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(f.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(f.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.Type)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NumRows())); err != nil {
		return err
	}
	for _, c := range t.cols {
		if err := writeColumn(bw, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeColumn(w io.Writer, c *column) error {
	switch c.typ {
	case Int64:
		return binary.Write(w, binary.LittleEndian, c.ints)
	case Float64:
		return binary.Write(w, binary.LittleEndian, c.floats)
	case Point:
		flat := make([]float64, 0, len(c.points)*2)
		for _, p := range c.points {
			flat = append(flat, p.X, p.Y)
		}
		return binary.Write(w, binary.LittleEndian, flat)
	case String:
		if err := binary.Write(w, binary.LittleEndian, uint32(len(c.dict))); err != nil {
			return err
		}
		for _, s := range c.dict {
			if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
		return binary.Write(w, binary.LittleEndian, c.codes)
	}
	return fmt.Errorf("dataset: unknown column type %v", c.typ)
}

// ReadBinary deserializes a table written by WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version, ncols uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("dataset: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, err
	}
	schema := make(Schema, ncols)
	for i := range schema {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		typ, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if Type(typ) < Int64 || Type(typ) > Point {
			return nil, fmt.Errorf("dataset: bad column type byte %d", typ)
		}
		schema[i] = Field{Name: string(name), Type: Type(typ)}
	}
	var nrows uint64
	if err := binary.Read(br, binary.LittleEndian, &nrows); err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for i, f := range schema {
		if err := readColumn(br, t.cols[i], int(nrows)); err != nil {
			return nil, fmt.Errorf("dataset: reading column %q: %w", f.Name, err)
		}
	}
	return t, nil
}

func readColumn(r io.Reader, c *column, n int) error {
	switch c.typ {
	case Int64:
		c.ints = make([]int64, n)
		return binary.Read(r, binary.LittleEndian, c.ints)
	case Float64:
		c.floats = make([]float64, n)
		return binary.Read(r, binary.LittleEndian, c.floats)
	case Point:
		flat := make([]float64, n*2)
		if err := binary.Read(r, binary.LittleEndian, flat); err != nil {
			return err
		}
		c.points = make([]geo.Point, n)
		for i := range c.points {
			c.points[i] = geo.Point{X: flat[2*i], Y: flat[2*i+1]}
		}
		return nil
	case String:
		var dictLen uint32
		if err := binary.Read(r, binary.LittleEndian, &dictLen); err != nil {
			return err
		}
		c.dict = make([]string, dictLen)
		c.dictID = make(map[string]int32, dictLen)
		for i := range c.dict {
			var sl uint32
			if err := binary.Read(r, binary.LittleEndian, &sl); err != nil {
				return err
			}
			buf := make([]byte, sl)
			if _, err := io.ReadFull(r, buf); err != nil {
				return err
			}
			c.dict[i] = string(buf)
			c.dictID[c.dict[i]] = int32(i)
		}
		c.codes = make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, c.codes); err != nil {
			return err
		}
		for _, code := range c.codes {
			if int(code) >= len(c.dict) || code < 0 {
				return fmt.Errorf("dictionary code %d out of range (dict size %d)", code, len(c.dict))
			}
		}
		return nil
	}
	return fmt.Errorf("unknown column type %v", c.typ)
}
