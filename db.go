package tabula

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/tabula-db/tabula/internal/core"
	"github.com/tabula-db/tabula/internal/dataset"
	"github.com/tabula-db/tabula/internal/engine"
	"github.com/tabula-db/tabula/internal/geo"
	"github.com/tabula-db/tabula/internal/loss"
	"github.com/tabula-db/tabula/internal/obs"
)

var errNotCreateAggregate = fmt.Errorf("tabula: statement is not CREATE AGGREGATE")

// builtinLossNames maps SQL-visible loss names to constructors over
// target attributes. The generic name "loss" resolves to a user-declared
// CREATE AGGREGATE of that name first, then falls back to mean_loss.
var builtinLossNames = map[string]func(targets []string, metric geo.Metric) (loss.Func, error){
	"mean_loss": func(t []string, _ geo.Metric) (loss.Func, error) {
		if len(t) != 1 {
			return nil, fmt.Errorf("tabula: mean_loss takes one target attribute")
		}
		return loss.NewMean(t[0]), nil
	},
	"heatmap_loss": func(t []string, m geo.Metric) (loss.Func, error) {
		if len(t) != 1 {
			return nil, fmt.Errorf("tabula: heatmap_loss takes one target attribute")
		}
		return loss.NewHeatmap(t[0], m), nil
	},
	"regression_loss": func(t []string, _ geo.Metric) (loss.Func, error) {
		if len(t) != 2 {
			return nil, fmt.Errorf("tabula: regression_loss takes two target attributes (x, y)")
		}
		return loss.NewRegression(t[0], t[1]), nil
	},
	"histogram_loss": func(t []string, _ geo.Metric) (loss.Func, error) {
		if len(t) != 1 {
			return nil, fmt.Errorf("tabula: histogram_loss takes one target attribute")
		}
		return loss.NewHistogram(t[0]), nil
	},
	"topk_loss": func(t []string, _ geo.Metric) (loss.Func, error) {
		if len(t) != 1 {
			return nil, fmt.Errorf("tabula: topk_loss takes one target attribute")
		}
		return loss.NewTopK(t[0], 10), nil
	},
	"distinct_loss": func(t []string, _ geo.Metric) (loss.Func, error) {
		if len(t) != 1 {
			return nil, fmt.Errorf("tabula: distinct_loss takes one target attribute")
		}
		return loss.NewDistinct(t[0]), nil
	},
}

// DB is the middleware's front door: it names raw tables, sampling
// cubes, and user-declared loss aggregates, and executes the paper's SQL
// dialect against them. A DB is safe for concurrent use.
//
// Concurrency model: cubes live in a per-cube registry whose lock is
// held only for create/lookup/list. Cube queries are lock-free end to
// end (one registry read lock for the name lookup, then a single atomic
// snapshot load inside the cube), and a build or append on one cube
// never blocks queries — not even on the same cube. The catalog of raw
// tables and the aggregate declarations are guarded by a separate
// read-write mutex that is never held across a cube build.
type DB struct {
	mu         sync.RWMutex // guards catalog and aggregates only
	catalog    *engine.Catalog
	cubes      *cubeRegistry
	aggregates map[string]*engine.CreateAggregate
	// Options applied to cube builds.
	metric  geo.Metric
	workers int             // default Params.Workers for Exec-built cubes
	params  func(p *Params) // optional hook to adjust build params
	// Observability (nil when metrics are off — every instrument below
	// is then a nil no-op, so the query path never branches on it).
	metrics  *obs.Registry
	stages   *obs.Stages  // build-stage tracer installed into build ctx
	qConds   *obs.Counter // tabula_db_queries_total{kind="conds"}
	qValues  *obs.Counter // tabula_db_queries_total{kind="values"}
	qBatch   *obs.Counter // tabula_db_queries_total{kind="batch"}
	qBatched *obs.Counter // tabula_db_batched_queries_total
}

// Option configures a DB. Options follow one functional-options idiom
// across the public surface (see doc.go "Configuration"): tabula.Open
// takes tabula.Option values (WithMetric, WithWorkers, WithMetrics,
// WithBuildParams) and server.New takes server.Option values
// (WithCacheBytes, WithGzip, WithMetrics, WithPprof, WithLogger).
type Option func(*DB)

// WithMetric sets the distance metric used by heatmap_loss and the DSL's
// AVGMINDIST on POINT targets (default Euclidean).
func WithMetric(m Metric) Option { return func(db *DB) { db.metric = m } }

// WithWorkers sets the default worker budget for every initialization
// stage of cubes built via Exec (0 = GOMAXPROCS). A WithBuildParams
// hook runs afterwards and may override it per build.
func WithWorkers(n int) Option { return func(db *DB) { db.workers = n } }

// WithMetrics arms the DB's observability surface on the given registry
// (nil leaves metrics off): query counters by kind, per-cube append and
// snapshot-generation metrics (registered as cubes are created or
// registered), and build-stage wall-time histograms recorded via a
// stage tracer installed into every Exec build's context. Metrics are
// recorded with single atomic ops — never an allocation — on the query
// path, and a DB without WithMetrics pays nothing at all.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(db *DB) {
		db.metrics = reg
		db.stages = obs.NewStages(reg)
		db.qConds = reg.Counter("tabula_db_queries_total", "DB queries answered, by request kind.", obs.Label{Name: "kind", Value: "conds"})
		db.qValues = reg.Counter("tabula_db_queries_total", "DB queries answered, by request kind.", obs.Label{Name: "kind", Value: "values"})
		db.qBatch = reg.Counter("tabula_db_queries_total", "DB queries answered, by request kind.", obs.Label{Name: "kind", Value: "batch"})
		db.qBatched = reg.Counter("tabula_db_batched_queries_total", "Individual queries inside batch requests.")
	}
}

// WithBuildParams installs a hook that adjusts the Params of every cube
// built via Exec (e.g. to tune sampler options).
func WithBuildParams(hook func(*Params)) Option { return func(db *DB) { db.params = hook } }

// Open creates an empty middleware instance.
func Open(opts ...Option) *DB {
	db := &DB{
		catalog:    engine.NewCatalog(),
		cubes:      newCubeRegistry(),
		aggregates: make(map[string]*engine.CreateAggregate),
		metric:     geo.Euclidean,
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// RegisterTable names a raw table for use in SQL statements.
func (db *DB) RegisterTable(name string, t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.catalog.Register(name, t)
}

// RegisterCube names an already-built (or loaded) sampling cube. When
// the DB was opened WithMetrics, the cube's append and snapshot metrics
// are registered under the (lowercased) name.
func (db *DB) RegisterCube(name string, c *Cube) {
	name = strings.ToLower(name)
	db.cubes.set(name, c)
	c.RegisterMetrics(db.metrics, name)
}

// CubeByName returns a registered cube.
func (db *DB) CubeByName(name string) (*Cube, bool) {
	return db.cubes.lookup(strings.ToLower(name))
}

// Cubes lists the registered cube names, sorted. It replaces callers'
// hand-rolled name tracking (Exec-created and RegisterCube-registered
// cubes both appear).
func (db *DB) Cubes() []string {
	return db.cubes.names()
}

// QueryRequest names one unit of serving work for DB.Do: which cube to
// answer from and, via exactly one of the three predicate fields, what
// kind of request it is.
//
//   - Where: a single query with predicate values in display form,
//     parsed against the cube's schema (the shape JSON clients send).
//   - Batch: a whole viewport of display-form queries answered against
//     ONE atomically loaded snapshot.
//   - Conds: a single query with pre-typed predicate values.
//
// Setting more than one predicate field is an error. Setting none asks
// for the apex cell (no predicates) via the Conds path.
type QueryRequest struct {
	// Cube names the registered cube to answer from.
	Cube string
	// Where holds display-form predicate values for a single query.
	Where map[string]string
	// Batch holds display-form predicates for a snapshot-consistent
	// batch; the response's Results is index-aligned with it.
	Batch []map[string]string
	// Conds holds typed equality predicates for a single query.
	Conds []Condition
}

// QueryResponse is the outcome of DB.Do. Exactly one field is set:
// Result for single-query requests (Where or Conds), Results for Batch
// requests.
type QueryResponse struct {
	// Result answers Where and Conds requests.
	Result *QueryResult
	// Results answers Batch requests, index-aligned with the request's
	// Batch. Every result shares one Version (the snapshot's), while
	// per-result Generations may differ — each names the answering
	// shard's age, not the snapshot's.
	Results []*QueryResult
}

// Do answers a dashboard query request against a registered cube. It is
// the native (non-SQL) serving entry point: the request kind is picked
// by which predicate field is set (see QueryRequest), queries are
// lock-free end to end, and ctx cancellation (e.g. a disconnected HTTP
// client) aborts the work. Query, QueryByValues and QueryBatchByValues
// are deprecated wrappers over Do.
func (db *DB) Do(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	set := 0
	if req.Where != nil {
		set++
	}
	if req.Batch != nil {
		set++
	}
	if req.Conds != nil {
		set++
	}
	if set > 1 {
		return nil, fmt.Errorf("tabula: ambiguous QueryRequest for cube %q: exactly one of Where, Batch or Conds may be set", req.Cube)
	}
	c, ok := db.CubeByName(req.Cube)
	if !ok {
		return nil, fmt.Errorf("tabula: unknown cube %q", req.Cube)
	}
	switch {
	case req.Batch != nil:
		db.qBatch.Inc()
		db.qBatched.Add(uint64(len(req.Batch)))
		results, err := c.QueryBatchByValues(ctx, req.Batch)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Results: results}, nil
	case req.Where != nil:
		db.qValues.Inc()
		res, err := c.QueryByValues(ctx, req.Where)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Result: res}, nil
	default:
		db.qConds.Inc()
		res, err := c.Query(ctx, req.Conds)
		if err != nil {
			return nil, err
		}
		return &QueryResponse{Result: res}, nil
	}
}

// emptyWhere and emptyBatch keep the deprecated wrappers' nil arguments
// on the request kind the caller named (a nil map or slice would
// otherwise dispatch as a Conds apex query — same answer, different
// response shape for batches).
var (
	emptyWhere = map[string]string{}
	emptyBatch = []map[string]string{}
)

// Query answers a structured dashboard query against a registered cube:
// a conjunction of equality predicates over its cubed attributes.
//
// Deprecated: use Do with QueryRequest.Conds.
func (db *DB) Query(ctx context.Context, cube string, conds []Condition) (*QueryResult, error) {
	resp, err := db.Do(ctx, QueryRequest{Cube: cube, Conds: conds})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// QueryByValues is Query with predicate values in display form, parsed
// against the cube's schema (the shape JSON clients send).
//
// Deprecated: use Do with QueryRequest.Where.
func (db *DB) QueryByValues(ctx context.Context, cube string, where map[string]string) (*QueryResult, error) {
	if where == nil {
		where = emptyWhere
	}
	resp, err := db.Do(ctx, QueryRequest{Cube: cube, Where: where})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// QueryBatchByValues answers a whole viewport of display-form queries
// against ONE atomically loaded snapshot of the cube.
//
// Deprecated: use Do with QueryRequest.Batch.
func (db *DB) QueryBatchByValues(ctx context.Context, cube string, queries []map[string]string) ([]*QueryResult, error) {
	if queries == nil {
		queries = emptyBatch
	}
	resp, err := db.Do(ctx, QueryRequest{Cube: cube, Batch: queries})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// Append ingests a batch into an appendable registered cube under that
// cube's maintenance lock. Appends to different cubes run concurrently;
// queries are never blocked (they keep serving the previous snapshot
// until the batch publishes).
func (db *DB) Append(ctx context.Context, cube string, batch *Table) (*AppendStats, error) {
	e, ok := db.cubes.entry(strings.ToLower(cube), false)
	if !ok || e.cube.Load() == nil {
		return nil, fmt.Errorf("tabula: unknown cube %q", cube)
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	return e.cube.Load().Append(ctx, batch)
}

// Result is the outcome of Exec: a table of rows for SELECT statements
// (cube queries return the sample), or a status message for DDL.
type Result struct {
	// Table holds SELECT output (nil for DDL statements).
	Table *Table
	// FromGlobal reports whether a cube query was answered from the
	// global sample.
	FromGlobal bool
	// Message describes the effect of a DDL statement.
	Message string
}

// Exec parses and executes one statement of the Tabula SQL dialect:
//
//   - CREATE AGGREGATE name(Raw, Sam) RETURN type AS BEGIN expr END
//     declares a user-defined accuracy loss.
//   - CREATE TABLE cube AS SELECT attrs…, SAMPLING(*, θ) AS sample FROM
//     tbl GROUPBY CUBE(attrs…) HAVING lossName(target…, Sam_global) > θ
//     initializes a sampling cube (lossName is a built-in — mean_loss,
//     heatmap_loss, regression_loss, histogram_loss — or a declared
//     aggregate).
//   - SELECT sample FROM cube WHERE a = v AND … fetches a materialized
//     sample from a cube.
//   - Any other SELECT executes against the raw tables.
//
// ctx flows through the whole statement: raw-table scans, group-bys and
// cube queries poll it, so cancelling ctx aborts in-flight work with
// ctx.Err().
func (db *DB) Exec(ctx context.Context, sql string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := engine.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *engine.CreateAggregate:
		db.mu.Lock()
		db.aggregates[strings.ToLower(s.Name)] = s
		db.mu.Unlock()
		return &Result{Message: fmt.Sprintf("aggregate %s declared", s.Name)}, nil
	case *engine.CreateSamplingCube:
		return db.execCreateCube(ctx, s)
	case *engine.CreateTableAs:
		db.mu.RLock()
		out, err := db.catalog.ExecuteSelect(ctx, s.Select)
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		db.RegisterTable(s.Name, out)
		return &Result{Message: fmt.Sprintf("table %s created: %d rows, %d columns", s.Name, out.NumRows(), out.NumCols())}, nil
	case *engine.SelectStmt:
		return db.execSelect(ctx, s)
	default:
		return nil, fmt.Errorf("tabula: unsupported statement %T", st)
	}
}

// resolveLoss maps the HAVING clause's loss name to a loss.Func.
func (db *DB) resolveLoss(name string, targets []string) (loss.Func, error) {
	db.mu.RLock()
	decl, declared := db.aggregates[strings.ToLower(name)]
	db.mu.RUnlock()
	if declared {
		return loss.Compile(decl, targets, db.metric)
	}
	if ctor, ok := builtinLossNames[strings.ToLower(name)]; ok {
		return ctor(targets, db.metric)
	}
	return nil, fmt.Errorf("tabula: unknown loss function %q (declare it with CREATE AGGREGATE or use a built-in: mean_loss, heatmap_loss, regression_loss, histogram_loss)", name)
}

func (db *DB) execCreateCube(ctx context.Context, s *engine.CreateSamplingCube) (*Result, error) {
	db.mu.RLock()
	tbl, err := db.catalog.Table(s.Source)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	f, err := db.resolveLoss(s.LossName, s.TargetAttrs)
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams(f, s.Threshold, s.CubedAttrs...)
	if db.workers > 0 {
		p.Workers = db.workers
	}
	if db.params != nil {
		db.params(&p)
	}
	// Serialize builds of the same cube name; builds of different cubes
	// (and all queries) proceed concurrently.
	name := strings.ToLower(s.CubeName)
	entry, _ := db.cubes.entry(name, true)
	entry.buildMu.Lock()
	defer entry.buildMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cube, err := core.Build(obs.WithStages(ctx, db.stages), tbl, p)
	if err != nil {
		return nil, err
	}
	entry.cube.Store(cube)
	cube.RegisterMetrics(db.metrics, name)
	st := cube.Stats()
	return &Result{Message: fmt.Sprintf(
		"sampling cube %s created: %d/%d iceberg cells, %d samples persisted, %s",
		s.CubeName, st.NumIcebergCells, st.NumCells, st.NumPersistedSamples, st.InitTime)}, nil
}

func (db *DB) execSelect(ctx context.Context, s *engine.SelectStmt) (*Result, error) {
	// Cube query?
	if cube, ok := db.CubeByName(s.From); ok {
		if err := validateCubeProjection(s); err != nil {
			return nil, err
		}
		eq, in, err := cubePredicates(s.Where)
		if err != nil {
			return nil, err
		}
		if len(in) > 0 {
			// Fold the equality predicates into single-value IN lists.
			for _, c := range eq {
				in = append(in, core.ConditionIn{Attr: c.Attr, Values: []dataset.Value{c.Value}})
			}
			res, err := cube.QueryIn(ctx, in)
			if err != nil {
				return nil, err
			}
			return &Result{Table: res.Sample, FromGlobal: res.FromGlobal}, nil
		}
		res, err := cube.Query(ctx, eq)
		if err != nil {
			return nil, err
		}
		return &Result{Table: res.Sample, FromGlobal: res.FromGlobal}, nil
	}
	db.mu.RLock()
	out, err := db.catalog.ExecuteSelect(ctx, s)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}

// validateCubeProjection enforces the dialect's cube-query form:
// SELECT sample (or *) FROM cube.
func validateCubeProjection(s *engine.SelectStmt) error {
	if s.Star {
		return nil
	}
	if len(s.Items) != 1 {
		return fmt.Errorf("tabula: cube queries select exactly one item: sample")
	}
	cr, ok := s.Items[0].Expr.(*engine.ColRef)
	if !ok || !strings.EqualFold(cr.Name, "sample") {
		return fmt.Errorf("tabula: cube queries must SELECT sample, got %s", s.Items[0].Expr.String())
	}
	if len(s.GroupBy) != 0 || s.Having != nil {
		return fmt.Errorf("tabula: cube queries do not support GROUP BY or HAVING")
	}
	return nil
}

// cubePredicates translates a conjunction of equality and IN predicates
// into cube query conditions.
func cubePredicates(e engine.Expr) ([]core.Condition, []core.ConditionIn, error) {
	if e == nil {
		return nil, nil, nil
	}
	var eq []core.Condition
	var in []core.ConditionIn
	var walk func(e engine.Expr) error
	walk = func(e engine.Expr) error {
		switch x := e.(type) {
		case *engine.Binary:
			switch x.Op {
			case engine.OpAnd:
				if err := walk(x.L); err != nil {
					return err
				}
				return walk(x.R)
			case engine.OpEq:
				cr, crOK := x.L.(*engine.ColRef)
				lit, litOK := x.R.(*engine.Lit)
				if !crOK || !litOK {
					// Allow "literal = column" too.
					cr, crOK = x.R.(*engine.ColRef)
					lit, litOK = x.L.(*engine.Lit)
				}
				if !crOK || !litOK {
					return fmt.Errorf("tabula: cube predicates take the form attribute = literal, got %s", x.String())
				}
				eq = append(eq, core.Condition{Attr: cr.Name, Value: lit.V})
				return nil
			default:
				return fmt.Errorf("tabula: cube WHERE clauses support only = and IN predicates joined by AND, got %s", x.String())
			}
		case *engine.InList:
			cr, ok := x.X.(*engine.ColRef)
			if !ok {
				return fmt.Errorf("tabula: IN needs an attribute on the left, got %s", x.X.String())
			}
			c := core.ConditionIn{Attr: cr.Name}
			for _, v := range x.Values {
				lit, ok := v.(*engine.Lit)
				if !ok {
					return fmt.Errorf("tabula: IN list entries must be literals, got %s", v.String())
				}
				c.Values = append(c.Values, lit.V)
			}
			in = append(in, c)
			return nil
		default:
			return fmt.Errorf("tabula: cube WHERE clauses support only = and IN predicates joined by AND, got %s", e.String())
		}
	}
	if err := walk(e); err != nil {
		return nil, nil, err
	}
	return eq, in, nil
}

// LoadCSV reads a CSV stream (with header) into a table registered under
// name, using the supplied schema for typing.
func (db *DB) LoadCSV(name string, r io.Reader, schema Schema) (*Table, error) {
	t, err := dataset.ReadCSV(r, schema)
	if err != nil {
		return nil, err
	}
	db.RegisterTable(name, t)
	return t, nil
}
