package main

import (
	"strings"
)

// statementSplitter accumulates input lines into SQL statements. A
// statement ends at a line whose last non-space character is ';', or at
// a blank line following non-blank content (so pasted multi-line
// statements without semicolons still execute).
type statementSplitter struct {
	pending strings.Builder
}

// Feed consumes one input line and returns a completed statement (without
// the trailing semicolon) when one is ready, or ok=false while the
// splitter is still accumulating.
func (s *statementSplitter) Feed(line string) (stmt string, ok bool) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" {
		if s.pending.Len() == 0 {
			return "", false
		}
		return s.take(), true
	}
	s.pending.WriteString(line)
	s.pending.WriteByte('\n')
	if strings.HasSuffix(trimmed, ";") {
		return s.take(), true
	}
	return "", false
}

// Pending reports whether a partial statement is buffered.
func (s *statementSplitter) Pending() bool { return s.pending.Len() > 0 }

// Flush returns any buffered partial statement (used at EOF).
func (s *statementSplitter) Flush() (string, bool) {
	if s.pending.Len() == 0 {
		return "", false
	}
	return s.take(), true
}

func (s *statementSplitter) take() string {
	stmt := strings.TrimSpace(s.pending.String())
	s.pending.Reset()
	stmt = strings.TrimSuffix(stmt, ";")
	return strings.TrimSpace(stmt)
}
