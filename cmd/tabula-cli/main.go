// Command tabula-cli is an interactive shell for the Tabula SQL dialect.
// It starts with a synthetic NYCtaxi table registered as 'nyctaxi'.
// Statements end with a semicolon or a blank line; \q quits.
//
//	$ tabula-cli -taxi-rows 50000
//	tabula> CREATE TABLE c AS SELECT payment_type, SAMPLING(*, 0.1) AS sample
//	   ...> FROM nyctaxi GROUPBY CUBE(payment_type)
//	   ...> HAVING mean_loss(fare_amount, Sam_global) > 0.1;
//	tabula> SELECT sample FROM c WHERE payment_type = 'cash';
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tabula-db/tabula"
)

const maxDisplayRows = 20

func main() {
	var (
		taxiRows = flag.Int("taxi-rows", 50000, "rows of synthetic NYCtaxi data (0 to skip)")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	db := tabula.Open()
	if *taxiRows > 0 {
		fmt.Fprintf(os.Stderr, "generating %d synthetic taxi rides as table 'nyctaxi' ...\n", *taxiRows)
		db.RegisterTable("nyctaxi", tabula.GenerateTaxi(*taxiRows, *seed))
	}
	fmt.Fprintln(os.Stderr, `Tabula SQL shell. Built-in losses: mean_loss, heatmap_loss, regression_loss, histogram_loss. End statements with ';'. Type \q to quit.`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var split statementSplitter
	prompt := func() {
		if split.Pending() {
			fmt.Fprint(os.Stderr, "   ...> ")
		} else {
			fmt.Fprint(os.Stderr, "tabula> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case `\q`, "exit", "quit":
			return
		}
		if stmt, ok := split.Feed(line); ok && stmt != "" {
			run(db, stmt)
		}
		prompt()
	}
	if stmt, ok := split.Flush(); ok && stmt != "" {
		run(db, stmt)
	}
}

func run(db *tabula.DB, stmt string) {
	res, err := db.Exec(context.Background(), stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if res.Message != "" {
		fmt.Println(res.Message)
	}
	if res.Table == nil {
		return
	}
	printTable(res.Table, res.FromGlobal)
}

func printTable(t *tabula.Table, fromGlobal bool) {
	cols := make([]string, 0, t.NumCols())
	for _, f := range t.Schema() {
		cols = append(cols, f.Name)
	}
	fmt.Println(strings.Join(cols, " | "))
	n := t.NumRows()
	show := n
	if show > maxDisplayRows {
		show = maxDisplayRows
	}
	for r := 0; r < show; r++ {
		cells := make([]string, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			cells[c] = t.Value(r, c).String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if n > show {
		fmt.Printf("... (%d rows total)\n", n)
	}
	if fromGlobal {
		fmt.Println("-- answered from the global sample (non-iceberg cell)")
	}
}
