package main

import "testing"

func TestSplitterSemicolon(t *testing.T) {
	var s statementSplitter
	if _, ok := s.Feed("SELECT * FROM t"); ok {
		t.Fatal("statement should not complete without terminator")
	}
	if !s.Pending() {
		t.Fatal("should be pending")
	}
	stmt, ok := s.Feed("WHERE a = 1;")
	if !ok || stmt != "SELECT * FROM t\nWHERE a = 1" {
		t.Fatalf("got %q ok=%v", stmt, ok)
	}
	if s.Pending() {
		t.Fatal("should be drained")
	}
}

func TestSplitterBlankLineTerminates(t *testing.T) {
	var s statementSplitter
	s.Feed("SELECT sample FROM c")
	stmt, ok := s.Feed("   ")
	if !ok || stmt != "SELECT sample FROM c" {
		t.Fatalf("got %q ok=%v", stmt, ok)
	}
}

func TestSplitterBlankWithoutPending(t *testing.T) {
	var s statementSplitter
	if _, ok := s.Feed(""); ok {
		t.Fatal("blank line with nothing pending should not emit")
	}
}

func TestSplitterSingleLine(t *testing.T) {
	var s statementSplitter
	stmt, ok := s.Feed("SELECT 1;")
	if !ok || stmt != "SELECT 1" {
		t.Fatalf("got %q ok=%v", stmt, ok)
	}
}

func TestSplitterFlush(t *testing.T) {
	var s statementSplitter
	s.Feed("SELECT unfinished")
	stmt, ok := s.Flush()
	if !ok || stmt != "SELECT unfinished" {
		t.Fatalf("got %q ok=%v", stmt, ok)
	}
	if _, ok := s.Flush(); ok {
		t.Fatal("second flush should be empty")
	}
}

func TestSplitterTrailingWhitespaceSemicolon(t *testing.T) {
	var s statementSplitter
	stmt, ok := s.Feed("  SELECT 2 ;  ")
	if !ok || stmt != "SELECT 2" {
		t.Fatalf("got %q ok=%v", stmt, ok)
	}
}
