// Command tabula-server runs the Tabula middleware as an HTTP service:
// it loads or generates a dataset, optionally pre-builds a sampling cube,
// and serves dashboard queries.
//
// Usage:
//
//	tabula-server -addr :8080 -taxi-rows 100000 \
//	  -init "CREATE TABLE taxi_cube AS SELECT payment_type, vendor_name, SAMPLING(*, 0.1) AS sample FROM nyctaxi GROUPBY CUBE(payment_type, vendor_name) HAVING mean_loss(fare_amount, Sam_global) > 0.1"
//
// then:
//
//	curl -s localhost:8080/v1/query -d '{"cube":"taxi_cube","where":{"payment_type":"cash"}}'
//	curl -s localhost:8080/v1/metrics
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests get a drain window, and request contexts
// are cancelled so long scans abort instead of writing to dead sockets.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tabula-db/tabula"
	"github.com/tabula-db/tabula/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		taxiRows   = flag.Int("taxi-rows", 100000, "rows of synthetic NYCtaxi data to register as 'nyctaxi' (0 to skip)")
		seed       = flag.Int64("seed", 42, "generator seed")
		initSQL    = flag.String("init", "", "semicolon-separated statements to execute at startup")
		cubeFile   = flag.String("load-cube", "", "load a persisted cube file and register it as 'cube'")
		drainTime  = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		workers    = flag.Int("workers", 0, "worker budget for every cube-initialization stage (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("cache-bytes", server.DefaultCacheBytes, "response-cache byte budget (0 disables caching)")
		gzipOn     = flag.Bool("gzip", true, "serve cached gzip response variants to clients that accept them")
		metricsOn  = flag.Bool("metrics", true, "record metrics and expose them at GET /v1/metrics")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var registry *tabula.MetricsRegistry // nil = metrics off end to end
	if *metricsOn {
		registry = tabula.NewMetricsRegistry()
	}
	db := tabula.Open(tabula.WithWorkers(*workers), tabula.WithMetrics(registry))
	if *taxiRows > 0 {
		log.Printf("generating %d synthetic taxi rides ...", *taxiRows)
		db.RegisterTable("nyctaxi", tabula.GenerateTaxi(*taxiRows, *seed))
	}
	if *cubeFile != "" {
		f, err := os.Open(*cubeFile)
		if err != nil {
			log.Fatalf("tabula-server: %v", err)
		}
		cube, err := tabula.LoadCube(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("tabula-server: loading cube: %v", err)
		}
		db.RegisterCube("cube", cube)
		log.Printf("loaded cube from %s (%d samples, theta=%g)", *cubeFile, cube.NumPersistedSamples(), cube.Theta())
	}
	if *initSQL != "" {
		for _, stmt := range strings.Split(*initSQL, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			res, err := db.Exec(ctx, stmt)
			if err != nil {
				log.Fatalf("tabula-server: init statement failed: %v", err)
			}
			if res.Message != "" {
				log.Print(res.Message)
			}
		}
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(db,
			server.WithCacheBytes(*cacheBytes),
			server.WithGzip(*gzipOn),
			server.WithMetrics(registry),
			server.WithPprof(*pprofOn)),
		// Cancel request contexts when the serve loop exits, so shutdown
		// aborts in-flight scans that exceed the drain window.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("tabula middleware listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatalf("tabula-server: %v", err)
	case <-ctx.Done():
		log.Printf("signal received; draining for up to %s ...", *drainTime)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("tabula-server: shutdown: %v", err)
		}
		<-errc // ListenAndServe returns http.ErrServerClosed
		log.Print("tabula-server: stopped cleanly")
	}
}
