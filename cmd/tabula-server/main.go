// Command tabula-server runs the Tabula middleware as an HTTP service:
// it loads or generates a dataset, optionally pre-builds a sampling cube,
// and serves dashboard queries.
//
// Usage:
//
//	tabula-server -addr :8080 -taxi-rows 100000 \
//	  -init "CREATE TABLE taxi_cube AS SELECT payment_type, vendor_name, SAMPLING(*, 0.1) AS sample FROM nyctaxi GROUPBY CUBE(payment_type, vendor_name) HAVING mean_loss(fare_amount, Sam_global) > 0.1"
//
// then:
//
//	curl -s localhost:8080/query -d '{"cube":"taxi_cube","where":{"payment_type":"cash"}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"github.com/tabula-db/tabula"
	"github.com/tabula-db/tabula/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		taxiRows = flag.Int("taxi-rows", 100000, "rows of synthetic NYCtaxi data to register as 'nyctaxi' (0 to skip)")
		seed     = flag.Int64("seed", 42, "generator seed")
		initSQL  = flag.String("init", "", "semicolon-separated statements to execute at startup")
		cubeFile = flag.String("load-cube", "", "load a persisted cube file and register it as 'cube'")
	)
	flag.Parse()

	db := tabula.Open()
	if *taxiRows > 0 {
		log.Printf("generating %d synthetic taxi rides ...", *taxiRows)
		db.RegisterTable("nyctaxi", tabula.GenerateTaxi(*taxiRows, *seed))
	}
	srv := server.New(db)
	if *cubeFile != "" {
		f, err := os.Open(*cubeFile)
		if err != nil {
			log.Fatalf("tabula-server: %v", err)
		}
		cube, err := tabula.LoadCube(f)
		f.Close()
		if err != nil {
			log.Fatalf("tabula-server: loading cube: %v", err)
		}
		db.RegisterCube("cube", cube)
		srv.TrackCube("cube")
		log.Printf("loaded cube from %s (%d samples, theta=%g)", *cubeFile, cube.NumPersistedSamples(), cube.Theta())
	}
	if *initSQL != "" {
		for _, stmt := range strings.Split(*initSQL, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			res, err := db.Exec(stmt)
			if err != nil {
				log.Fatalf("tabula-server: init statement failed: %v", err)
			}
			if res.Message != "" {
				log.Print(res.Message)
				var name string
				if n, _ := fmt.Sscanf(res.Message, "sampling cube %s created", &name); n == 1 {
					srv.TrackCube(name)
				}
			}
		}
	}
	log.Printf("tabula middleware listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
