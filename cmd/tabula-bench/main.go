// Command tabula-bench reproduces the paper's experimental evaluation:
// every table and figure of Section V has a named experiment that prints
// the corresponding rows/series.
//
// Usage:
//
//	tabula-bench -experiment fig11a [-rows 60000] [-queries 60] [-seed 42]
//	tabula-bench -experiment all -out results.txt
//	tabula-bench -init-json BENCH_init.json [-workers 1,2,4,8]
//	tabula-bench -serve-json BENCH_serve.json
//	tabula-bench -append-json BENCH_append.json
//	tabula-bench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/tabula-db/tabula/internal/harness"
	"github.com/tabula-db/tabula/internal/server"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (fig8a..fig14b, table1, table2) or 'all'")
		rows        = flag.Int("rows", harness.DefaultScale.Rows, "synthetic NYCtaxi rows")
		queries     = flag.Int("queries", harness.DefaultScale.Queries, "queries per workload")
		seed        = flag.Int64("seed", harness.DefaultScale.Seed, "random seed")
		out         = flag.String("out", "", "also write reports to this file")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		initJSON    = flag.String("init-json", "", "write an initialization stage-timing sweep to this JSON file and exit")
		workers     = flag.String("workers", "", "comma-separated worker counts for -init-json (default 1,2,4,GOMAXPROCS)")
		serveJSON   = flag.String("serve-json", "", "write serving-path throughput measurements to this JSON file and exit")
		overheadMax = flag.Float64("metrics-overhead-max", 0, "with -serve-json: fail if warm metrics overhead exceeds this percent (0 disables the gate)")
		appendJSON  = flag.String("append-json", "", "write append-latency and cache-retention measurements to this JSON file and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *initJSON != "" {
		var progress io.Writer = os.Stderr
		if *quiet {
			progress = nil
		}
		var counts []int
		if *workers != "" {
			for _, tok := range strings.Split(*workers, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "tabula-bench: bad -workers entry %q\n", tok)
					os.Exit(2)
				}
				counts = append(counts, n)
			}
		}
		f, err := os.Create(*initJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		scale := harness.Scale{Rows: *rows, Queries: *queries, Seed: *seed}
		rep, err := harness.WriteInitStageJSON(f, scale, counts, progress)
		if err != nil {
			//lint:ignore droppederr best-effort cleanup; the write error below is the one worth reporting
			f.Close()
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if k := rep.DryRunKernel; k != nil {
			fmt.Printf("wrote %s (dry-run scan: vectorized %.1f ns/row vs scalar %.1f ns/row: %.2fx; allocs/op %.0f vs %.0f: %.1fx fewer)\n",
				*initJSON, k.VectorizedNsPerRow, k.ScalarNsPerRow, k.Speedup,
				k.VectorizedAllocsPerOp, k.ScalarAllocsPerOp, k.AllocReduction)
		} else {
			fmt.Printf("wrote %s\n", *initJSON)
		}
		return
	}
	if *serveJSON != "" {
		var progress io.Writer = os.Stderr
		if *quiet {
			progress = nil
		}
		rep, err := server.MeasureServing(*rows, *seed, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*serveJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if err := harness.WriteServeJSON(f, rep); err != nil {
			//lint:ignore droppederr best-effort cleanup; the write error below is the one worth reporting
			f.Close()
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		warm, legacy := rep.Scenario("warm"), rep.Scenario("legacy")
		fmt.Printf("wrote %s (warm %.0f req/s vs legacy %.0f req/s: %.1fx; allocs/op %.0f vs %.0f: %.1fx)\n",
			*serveJSON, warm.ReqPerSec, legacy.ReqPerSec, rep.WarmSpeedupVsLegacy,
			warm.AllocsPerOp, legacy.AllocsPerOp, rep.WarmAllocImprovementVsLegacy)
		if batch := rep.Scenario("batch"); batch != nil {
			fmt.Printf("  batch viewport: %.0f req/s, %.0f ns/op, %.0f allocs/op; cold parallel fill p1→p4: %.2fx\n",
				batch.ReqPerSec, batch.NsPerOp, batch.AllocsPerOp, rep.BatchParallelSpeedup)
		}
		fmt.Printf("  metrics overhead: %+.1f%% ns/op, %+.1f allocs/op (warm vs warm_nometrics)\n",
			rep.MetricsOverheadNsPct, rep.MetricsOverheadAllocsPerOp)
		if *overheadMax > 0 {
			if rep.MetricsOverheadNsPct > *overheadMax {
				fmt.Fprintf(os.Stderr, "tabula-bench: metrics overhead %.1f%% exceeds -metrics-overhead-max %.1f%%\n",
					rep.MetricsOverheadNsPct, *overheadMax)
				os.Exit(1)
			}
			if rep.MetricsOverheadAllocsPerOp > 0.5 {
				fmt.Fprintf(os.Stderr, "tabula-bench: metrics added %.2f allocs/op on the warm path; the instrumentation contract is 0\n",
					rep.MetricsOverheadAllocsPerOp)
				os.Exit(1)
			}
		}
		return
	}
	if *appendJSON != "" {
		var progress io.Writer = os.Stderr
		if *quiet {
			progress = nil
		}
		rep, err := server.MeasureAppend(*rows, *seed, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*appendJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if err := harness.WriteAppendJSON(f, rep); err != nil {
			//lint:ignore droppederr best-effort cleanup; the write error below is the one worth reporting
			f.Close()
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		shard := rep.Variant("sharded")
		fmt.Printf("wrote %s (sharded retention %.0f%% vs monolithic %.0f%%; one-row append touched %d/%d shards; append latency ratio %.2fx)\n",
			*appendJSON, rep.ShardedRetention*100, rep.MonolithicRetention*100,
			shard.ShardsTouchedOneRow, shard.Shards, rep.AppendLatencyRatio)
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "tabula-bench: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if *experiment == "all" {
		ids = harness.ExperimentIDs()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			id = strings.TrimSpace(id)
			if _, ok := harness.Experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "tabula-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	scale := harness.Scale{Rows: *rows, Queries: *queries, Seed: *seed}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	writers := []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	fmt.Fprintf(w, "tabula-bench: rows=%d queries=%d seed=%d\n\n", *rows, *queries, *seed)
	seen := map[string]bool{}
	for _, id := range ids {
		reps, err := harness.Experiments[id](scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tabula-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range reps {
			// fig10a/fig10b (and the a/b query-sweep pairs) share runners
			// that return both panels; drop duplicates when running 'all'.
			key := r.ID + "|" + r.Title
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintln(w, r.String())
		}
	}
}
