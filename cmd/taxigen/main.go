// Command taxigen writes the synthetic NYC-taxi dataset to disk in CSV or
// the library's compact binary format, so experiments can share a fixed
// dataset across runs.
//
//	taxigen -rows 1000000 -seed 42 -format binary -o taxi.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/tabula-db/tabula/internal/nyctaxi"
)

func main() {
	var (
		rows   = flag.Int("rows", 100000, "number of rides to generate")
		seed   = flag.Int64("seed", 42, "generator seed")
		format = flag.String("format", "csv", "output format: csv or binary")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	tbl := nyctaxi.Generate(*rows, *seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("taxigen: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("taxigen: closing output: %v", err)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = tbl.WriteCSV(w)
	case "binary":
		err = tbl.WriteBinary(w)
	default:
		err = fmt.Errorf("unknown format %q (want csv or binary)", *format)
	}
	if err != nil {
		log.Fatalf("taxigen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rides (%s, ~%d bytes in memory)\n", tbl.NumRows(), *format, tbl.Footprint())
}
