package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListInventory(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, name := range []string{
		"ctxpoll", "snapshotmut", "maporder", "droppederr", "atomicload",
		"poolpair", "chunkalias", "hotalloc", "stalesuppress",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch", "."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-run nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", errOut.String())
	}
}

// TestSeededViolationFailsTheRun drives the CLI end to end over a
// fixture package that contains deliberate violations: findings must
// print in file:line: analyzer: message form and the exit status must
// be nonzero.
func TestSeededViolationFailsTheRun(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "droppederr", "../../internal/lint/testdata/droppederr"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run over seeded violations = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "droppederr.go:") || !strings.Contains(out.String(), ": droppederr: ") {
		t.Errorf("findings not in file:line: analyzer: message form:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing summary: %s", errOut.String())
	}
}

// TestJSONOutput pins the machine-readable schema: a -json run over
// seeded violations emits a JSON array of {file,line,analyzer,message}
// objects (and still exits 1 so CI can both fail and upload the
// artifact).
func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-run", "poolpair", "../../internal/lint/testdata/poolpair"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run -json over seeded violations = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json run over seeded violations produced an empty array")
	}
	for i, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer != "poolpair" || f.Message == "" {
			t.Errorf("finding %d has incomplete schema: %+v", i, f)
		}
	}
}

// TestJSONCleanRunEmitsEmptyArray keeps the artifact parseable on a
// clean tree.
func TestJSONCleanRunEmitsEmptyArray(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-run", "maporder", "../../internal/lint/testdata/poolpair"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("clean -json run = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json run should emit [], got %q", out.String())
	}
}
