package main

import (
	"strings"
	"testing"
)

func TestListInventory(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, name := range []string{"ctxpoll", "snapshotmut", "maporder", "droppederr", "atomicload"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "nosuch", "."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-run nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", errOut.String())
	}
}

// TestSeededViolationFailsTheRun drives the CLI end to end over a
// fixture package that contains deliberate violations: findings must
// print in file:line: analyzer: message form and the exit status must
// be nonzero.
func TestSeededViolationFailsTheRun(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-run", "droppederr", "../../internal/lint/testdata/droppederr"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run over seeded violations = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "droppederr.go:") || !strings.Contains(out.String(), ": droppederr: ") {
		t.Errorf("findings not in file:line: analyzer: message form:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "finding(s)") {
		t.Errorf("stderr missing summary: %s", errOut.String())
	}
}
