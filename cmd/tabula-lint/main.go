// Command tabula-lint runs the project's custom static-analysis suite
// (internal/lint) over package patterns and reports violations of the
// invariants the concurrency and determinism design depends on:
//
//	tabula-lint ./...            # whole module (run from the module root)
//	tabula-lint -run ctxpoll ./internal/engine
//	tabula-lint -list            # analyzer inventory
//
// Findings print one per line as "file:line: analyzer: message" and
// make the exit status 1; a clean tree exits 0. Suppress an individual
// finding with a reasoned directive on or directly above its line:
//
//	//lint:ignore <analyzer> <reason>
//
// The tool is built exclusively on the standard library's go/ast,
// go/parser, go/token and go/types packages; it resolves imports with
// the source importer, so it must run with a working directory inside
// the module it analyzes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/tabula-db/tabula/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tabula-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, az := range analyzers {
			byName[az.Name] = az
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tabula-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, az)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "tabula-lint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "tabula-lint: %v\n", err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tabula-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
