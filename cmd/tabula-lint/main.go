// Command tabula-lint runs the project's custom static-analysis suite
// (internal/lint) over package patterns and reports violations of the
// invariants the concurrency and determinism design depends on:
//
//	tabula-lint ./...            # whole module (run from the module root)
//	tabula-lint -run ctxpoll ./internal/engine
//	tabula-lint -list            # analyzer inventory
//	tabula-lint -json ./...      # machine-readable findings (CI artifact)
//	tabula-lint -p 1 -time ./... # sequential driver with wall-time report
//
// Findings print one per line as "file:line: analyzer: message" and
// make the exit status 1; a clean tree exits 0. With -json they print
// instead as one JSON array with the stable schema
// {"file","line","analyzer","message"}, sorted like the text output.
// -p bounds the load/analysis worker pool (default: one per CPU; the
// output is byte-identical at any -p). -time reports load/analyze wall
// times on stderr. Suppress an individual finding with a reasoned
// directive on or directly above its line:
//
//	//lint:ignore <analyzer> <reason>
//
// The tool is built exclusively on the standard library's go/ast,
// go/parser, go/token and go/types packages; it resolves imports with
// the source importer, so it must run with a working directory inside
// the module it analyzes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tabula-db/tabula/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tabula-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array of {file,line,analyzer,message}")
	workers := fs.Int("p", runtime.GOMAXPROCS(0), "package load/analysis parallelism (1 = sequential)")
	timing := fs.Bool("time", false, "report load/analyze wall time on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, az := range analyzers {
			byName[az.Name] = az
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tabula-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, az)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "tabula-lint: %v\n", err)
		return 2
	}
	loadStart := time.Now()
	pkgs, err := lint.LoadN(dirs, *workers)
	if err != nil {
		fmt.Fprintf(stderr, "tabula-lint: %v\n", err)
		return 2
	}
	loadDur := time.Since(loadStart)
	runStart := time.Now()
	findings := lint.RunN(pkgs, analyzers, *workers)
	runDur := time.Since(runStart)
	if *timing {
		fmt.Fprintf(stderr, "tabula-lint: -p %d: load %s, analyze %s, total %s (%d packages)\n",
			*workers, loadDur.Round(time.Millisecond), runDur.Round(time.Millisecond),
			(loadDur + runDur).Round(time.Millisecond), len(pkgs))
	}
	if *asJSON {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "tabula-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "tabula-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the stable machine-readable schema. Field names and
// order are part of the CI-artifact contract — add fields at the end,
// never rename.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as one indented JSON array (an empty
// run emits [] so consumers can always parse the artifact).
func writeJSON(w io.Writer, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
